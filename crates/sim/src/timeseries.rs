//! Deterministic time-series metrics: counters, event-driven sampled
//! gauges, streaming histograms and heavy-hitter sketches, with
//! Prometheus text-exposition, CSV, and windowed JSONL snapshot export.
//!
//! [`MetricsRegistry`] follows the same opt-in discipline as the flight
//! recorder ([`crate::trace::Tracer`]): a disabled registry is a single
//! `Option` check per call site, and an *enabled* registry only ever
//! observes engine state — it never draws from the RNG and never touches
//! the event queue — so enabling it leaves run metrics bit-identical to a
//! same-seed run without it.
//!
//! Counters are monotone `u64` totals (requests, squashes, fault
//! injections, ...). Gauges are event-driven samples: the engine pushes
//! `(sim-time, value)` pairs at its own control-flow points (launches,
//! completions, teardowns), and consecutive duplicate values are collapsed
//! so a long steady state costs one sample. Histograms
//! ([`MetricsRegistry::observe`]) are constant-memory
//! [`LogHistogram`]s for distributions (latencies, squash depths);
//! top-K sketches ([`MetricsRegistry::topk_add`]) are
//! [`SpaceSaving`] heavy-hitter trackers for per-key weight
//! (requests or wasted core-time per function). All values are integers,
//! which keeps every export format byte-stable across platforms.
//!
//! # Example
//!
//! ```
//! use specfaas_sim::timeseries::MetricsRegistry;
//! use specfaas_sim::SimTime;
//!
//! let mut reg = MetricsRegistry::recording();
//! reg.inc("specfaas_requests_submitted_total");
//! reg.sample(SimTime::from_millis(2), "specfaas_warm_pool_size", 5);
//! reg.sample_labeled(SimTime::from_millis(3), "specfaas_busy_cores", "node", "0", 12);
//!
//! let prom = reg.export_prometheus();
//! assert!(prom.contains("specfaas_requests_submitted_total 1"));
//! assert!(prom.contains("specfaas_busy_cores{node=\"0\"} 12"));
//!
//! let csv = reg.export_csv();
//! assert!(csv.starts_with("time_us,metric,label,value\n"));
//!
//! // A disabled registry records nothing and costs one branch per call.
//! let mut off = MetricsRegistry::disabled();
//! off.inc("specfaas_requests_submitted_total");
//! assert!(!off.enabled());
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::hist::LogHistogram;
use crate::time::{SimDuration, SimTime};
use crate::topk::SpaceSaving;

/// Metric identity: name plus at most one label pair. Unlabeled metrics
/// use empty strings for both label fields. `BTreeMap` keying on this
/// tuple gives a deterministic export order for free.
type Key = (&'static str, &'static str, String);

/// Keys a top-K sketch tracks per instrument.
const TOPK_CAPACITY: usize = 16;

/// One gauge's event-driven sample series.
type GaugeSeries = Vec<(SimTime, u64)>;

/// Process-wide registry generation counter: each recording registry gets
/// a distinct generation so stale [`GaugeHandle`]s cached across a
/// registry swap are detected and re-interned instead of indexing into
/// the wrong arena. Never exported, so it cannot perturb determinism.
static REGISTRY_GEN: AtomicU64 = AtomicU64::new(1);

/// An interned gauge instrument: an O(1) ticket into the registry's
/// series arena, minted by [`MetricsRegistry::sample_interned`]. Only
/// valid for the registry instance that minted it (enforced via the
/// embedded generation).
#[derive(Debug, Clone, Copy)]
pub struct GaugeHandle {
    gen: u64,
    idx: usize,
}

struct RegistryInner {
    /// Generation stamp minted at construction (see [`REGISTRY_GEN`]).
    gen: u64,
    counters: BTreeMap<Key, u64>,
    /// Gauge *identity* index: label value (the only non-static key
    /// component) nested inside a `(name, label_key)` outer map, mapping
    /// to a slot in [`RegistryInner::gauge_series`]. The nesting lets the
    /// sampling path look an instrument up by `&str` without allocating a
    /// key; iterating outer-then-inner visits the same `(name, label_key,
    /// label_value)` order a flat [`Key`] map would, so exports stay
    /// byte-identical.
    gauge_index: BTreeMap<(&'static str, &'static str), BTreeMap<String, usize>>,
    /// Gauge series arena, indexed by [`RegistryInner::gauge_index`] and
    /// by [`GaugeHandle`]s.
    gauge_series: Vec<GaugeSeries>,
    histograms: BTreeMap<Key, LogHistogram>,
    topks: BTreeMap<&'static str, SpaceSaving<String>>,
}

impl RegistryInner {
    fn new() -> Self {
        RegistryInner {
            gen: REGISTRY_GEN.fetch_add(1, Ordering::Relaxed),
            counters: BTreeMap::new(),
            gauge_index: BTreeMap::new(),
            gauge_series: Vec::new(),
            histograms: BTreeMap::new(),
            topks: BTreeMap::new(),
        }
    }

    /// Slot of the gauge `name{label_key="label_value"}`, interning a
    /// fresh series if this is the instrument's first sample. Borrow-first:
    /// the steady-state path never allocates.
    fn intern_gauge(
        &mut self,
        name: &'static str,
        label_key: &'static str,
        label_value: &str,
    ) -> usize {
        let by_label = self.gauge_index.entry((name, label_key)).or_default();
        if let Some(&idx) = by_label.get(label_value) {
            return idx;
        }
        let idx = self.gauge_series.len();
        self.gauge_series.push(Vec::new());
        by_label.insert(label_value.to_string(), idx);
        idx
    }
}

/// Appends one event-driven sample: same-instant samples overwrite,
/// consecutive duplicate values collapse.
fn push_sample(series: &mut GaugeSeries, now: SimTime, value: u64) {
    match series.last_mut() {
        Some((t, v)) if *t == now => *v = value,
        Some((_, v)) if *v == value => {}
        _ => series.push((now, value)),
    }
}

/// A deterministic metrics registry: counters plus event-driven sampled
/// gauges, exportable as Prometheus text exposition or CSV.
///
/// See the [module documentation](self) for the determinism contract and a
/// usage example.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Option<Box<RegistryInner>>,
}

impl MetricsRegistry {
    /// A registry that records nothing; every operation is a no-op behind
    /// a single branch.
    pub fn disabled() -> Self {
        MetricsRegistry { inner: None }
    }

    /// A registry that records counters and gauge samples.
    pub fn recording() -> Self {
        MetricsRegistry {
            inner: Some(Box::new(RegistryInner::new())),
        }
    }

    /// Whether this registry records anything. Engines consult this before
    /// doing any sampling work.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Increments the unlabeled counter `name` by one.
    pub fn inc(&mut self, name: &'static str) {
        self.inc_by(name, 1);
    }

    /// Increments the unlabeled counter `name` by `by`.
    pub fn inc_by(&mut self, name: &'static str, by: u64) {
        if let Some(inner) = self.inner.as_deref_mut() {
            *inner.counters.entry((name, "", String::new())).or_insert(0) += by;
        }
    }

    /// Increments the counter `name{label_key="label_value"}` by `by`.
    pub fn inc_labeled(&mut self, name: &'static str, label_key: &'static str, label_value: &str) {
        if let Some(inner) = self.inner.as_deref_mut() {
            *inner
                .counters
                .entry((name, label_key, label_value.to_string()))
                .or_insert(0) += 1;
        }
    }

    /// Records a sample of the unlabeled gauge `name` at sim-time `now`.
    ///
    /// Samples at the same instant overwrite each other (the last write at
    /// a timestamp wins) and consecutive duplicate values are collapsed.
    pub fn sample(&mut self, now: SimTime, name: &'static str, value: u64) {
        self.sample_labeled(now, name, "", "", value);
    }

    /// Records a sample of the gauge `name{label_key="label_value"}`.
    pub fn sample_labeled(
        &mut self,
        now: SimTime,
        name: &'static str,
        label_key: &'static str,
        label_value: &str,
        value: u64,
    ) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        let idx = inner.intern_gauge(name, label_key, label_value);
        push_sample(&mut inner.gauge_series[idx], now, value);
    }

    /// [`MetricsRegistry::sample_labeled`] through a cached instrument
    /// handle — the per-event hot path. The first call (or the first
    /// after a registry swap — detected via the handle's generation)
    /// interns the gauge and fills `handle`; every later call is an O(1)
    /// arena index with no map walk and no allocation. Semantically
    /// identical to re-looking the gauge up by name each time.
    pub fn sample_interned(
        &mut self,
        handle: &mut Option<GaugeHandle>,
        now: SimTime,
        name: &'static str,
        label_key: &'static str,
        label_value: &str,
        value: u64,
    ) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        let idx = match handle {
            Some(h) if h.gen == inner.gen => h.idx,
            _ => {
                let idx = inner.intern_gauge(name, label_key, label_value);
                *handle = Some(GaugeHandle {
                    gen: inner.gen,
                    idx,
                });
                idx
            }
        };
        push_sample(&mut inner.gauge_series[idx], now, value);
    }

    /// Records `value` into the unlabeled histogram `name`. O(1) and
    /// constant-memory: the backing [`LogHistogram`] allocates at most
    /// [`LogHistogram::MAX_BUCKETS`] counters however many values arrive.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.observe_labeled(name, "", "", value);
    }

    /// Records `value` into the histogram `name{label_key="label_value"}`.
    pub fn observe_labeled(
        &mut self,
        name: &'static str,
        label_key: &'static str,
        label_value: &str,
        value: u64,
    ) {
        if let Some(inner) = self.inner.as_deref_mut() {
            inner
                .histograms
                .entry((name, label_key, label_value.to_string()))
                .or_default()
                .record(value);
        }
    }

    /// Adds `weight` for `key` to the heavy-hitter sketch `name`
    /// (capacity 16, created on first use). Keys are free-form strings —
    /// the engines use `"<app>/<function>"`.
    pub fn topk_add(&mut self, name: &'static str, key: &str, weight: u64) {
        if let Some(inner) = self.inner.as_deref_mut() {
            inner
                .topks
                .entry(name)
                .or_insert_with(|| SpaceSaving::new(TOPK_CAPACITY))
                .add_weight_str(key, weight);
        }
    }

    /// The histogram recorded under `name` with the given label pair, if
    /// any values were observed.
    pub fn histogram(
        &self,
        name: &str,
        label_key: &str,
        label_value: &str,
    ) -> Option<&LogHistogram> {
        self.inner.as_deref().and_then(|i| {
            i.histograms
                .iter()
                .find(|((n, lk, lv), _)| *n == name && *lk == label_key && lv == label_value)
                .map(|(_, h)| h)
        })
    }

    /// The heavy-hitter sketch recorded under `name`, if any weight was
    /// added.
    pub fn topk(&self, name: &str) -> Option<&SpaceSaving<String>> {
        self.inner
            .as_deref()
            .and_then(|i| i.topks.iter().find(|(n, _)| **n == name).map(|(_, s)| s))
    }

    /// Current value of a counter (0 if never incremented). Unlabeled
    /// counters use empty strings for both label fields.
    pub fn counter(&self, name: &str, label_key: &str, label_value: &str) -> u64 {
        self.inner
            .as_deref()
            .and_then(|i| {
                i.counters
                    .iter()
                    .find(|((n, lk, lv), _)| *n == name && *lk == label_key && lv == label_value)
                    .map(|(_, v)| *v)
            })
            .unwrap_or(0)
    }

    /// The recorded sample series of a gauge (empty if never sampled).
    pub fn gauge_series(
        &self,
        name: &str,
        label_key: &str,
        label_value: &str,
    ) -> &[(SimTime, u64)] {
        self.inner
            .as_deref()
            .and_then(|i| {
                i.gauge_index
                    .iter()
                    .find(|((n, lk), _)| *n == name && *lk == label_key)
                    .and_then(|(_, by_label)| by_label.get(label_value))
                    .map(|&idx| i.gauge_series[idx].as_slice())
            })
            .unwrap_or(&[])
    }

    /// Renders the registry in Prometheus text exposition format (version
    /// 0.0.4): `# HELP` / `# TYPE` headers per metric, counters as their
    /// running totals, gauges as their most recent sampled value.
    ///
    /// Output is byte-deterministic: metrics sort by `(name, label)` and
    /// all values are integers.
    pub fn export_prometheus(&self) -> String {
        let Some(inner) = self.inner.as_deref() else {
            return String::new();
        };
        let mut out = String::new();
        let mut last_name = "";
        for ((name, lk, lv), value) in &inner.counters {
            if *name != last_name {
                header(&mut out, name, "counter");
                last_name = name;
            }
            line(&mut out, name, lk, lv, *value);
        }
        last_name = "";
        for ((name, lk), by_label) in &inner.gauge_index {
            if *name != last_name {
                header(&mut out, name, "gauge");
                last_name = name;
            }
            for (lv, &idx) in by_label {
                if let Some((_, v)) = inner.gauge_series[idx].last() {
                    line(&mut out, name, lk, lv, *v);
                }
            }
        }
        last_name = "";
        for ((name, lk, lv), hist) in &inner.histograms {
            if *name != last_name {
                header(&mut out, name, "histogram");
                last_name = name;
            }
            // Cumulative `le` buckets at the histogram's own (data-driven)
            // bucket boundaries: bucket [lo, hi) holds values ≤ hi-1, so
            // the inclusive boundary is hi-1. Exact in the linear region.
            let mut cumulative = 0u64;
            for (_, hi, count) in hist.nonzero_buckets() {
                cumulative += count;
                bucket_line(&mut out, name, lk, lv, &(hi - 1).to_string(), cumulative);
            }
            bucket_line(&mut out, name, lk, lv, "+Inf", hist.count());
            let labels = label_block(lk, lv);
            let _ = writeln!(out, "{name}_sum{labels} {}", hist.sum());
            let _ = writeln!(out, "{name}_count{labels} {}", hist.count());
        }
        for (name, sketch) in &inner.topks {
            header(&mut out, name, "counter");
            for (key, entry) in sketch.top() {
                let _ = writeln!(out, "{name}{{key=\"{key}\"}} {}", entry.count);
            }
        }
        out
    }

    /// Renders every histogram bucket as CSV with header
    /// `metric,label,bucket_lo,bucket_hi,count,cumulative` — `bucket_hi`
    /// exclusive, rows sorted by `(metric, label, bucket_lo)`.
    pub fn export_histograms_csv(&self) -> String {
        let Some(inner) = self.inner.as_deref() else {
            return String::new();
        };
        let mut out = String::from("metric,label,bucket_lo,bucket_hi,count,cumulative\n");
        for ((name, lk, lv), hist) in &inner.histograms {
            let label = if lk.is_empty() {
                String::new()
            } else {
                format!("{lk}={lv}")
            };
            let mut cumulative = 0u64;
            for (lo, hi, count) in hist.nonzero_buckets() {
                cumulative += count;
                let _ = writeln!(out, "{name},{label},{lo},{hi},{count},{cumulative}");
            }
        }
        out
    }

    /// A deterministic one-line JSON summary of the registry's cumulative
    /// state: every counter total plus per-histogram count/p50/p99/p99.9/max.
    /// Used by [`SnapshotLog`] for windowed JSONL emission; `t_us` is the
    /// sim-time the snapshot describes.
    pub fn snapshot_json(&self, t: SimTime) -> String {
        let mut out = format!("{{\"t_us\": {}", t.as_micros());
        if let Some(inner) = self.inner.as_deref() {
            out.push_str(", \"counters\": {");
            let mut first = true;
            for ((name, lk, lv), value) in &inner.counters {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                if lk.is_empty() {
                    let _ = write!(out, "\"{name}\": {value}");
                } else {
                    let _ = write!(out, "\"{name}{{{lk}={lv}}}\": {value}");
                }
            }
            out.push_str("}, \"histograms\": {");
            let mut first = true;
            for ((name, lk, lv), hist) in &inner.histograms {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                let key = if lk.is_empty() {
                    (*name).to_string()
                } else {
                    format!("{name}{{{lk}={lv}}}")
                };
                let _ = write!(
                    out,
                    "\"{key}\": {{\"count\": {}, \"p50\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}}}",
                    hist.count(),
                    hist.quantile(0.50),
                    hist.quantile(0.99),
                    hist.quantile(0.999),
                    hist.max().unwrap_or(0)
                );
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Renders every gauge sample as CSV with header
    /// `time_us,metric,label,value`, rows sorted by `(time, metric,
    /// label)`. Counters are totals, not series, and are exported via
    /// [`MetricsRegistry::export_prometheus`] instead.
    pub fn export_csv(&self) -> String {
        let Some(inner) = self.inner.as_deref() else {
            return String::new();
        };
        let mut rows: Vec<(SimTime, &str, &str, &str, u64)> = Vec::new();
        for ((name, lk), by_label) in &inner.gauge_index {
            for (lv, &idx) in by_label {
                for (t, v) in &inner.gauge_series[idx] {
                    rows.push((*t, name, lk, lv, *v));
                }
            }
        }
        rows.sort();
        let mut out = String::from("time_us,metric,label,value\n");
        for (t, name, lk, lv, v) in rows {
            if lk.is_empty() {
                let _ = writeln!(out, "{},{},,{}", t.as_micros(), name, v);
            } else {
                let _ = writeln!(out, "{},{},{}={},{}", t.as_micros(), name, lk, lv, v);
            }
        }
        out
    }
}

/// Windowed JSONL snapshot emitter for long runs.
///
/// The harness ticks this from its dispatch loop; whenever sim-time
/// crosses a window boundary the registry's cumulative state is rendered
/// (via [`MetricsRegistry::snapshot_json`]) as one JSON line stamped with
/// the boundary time. Boundaries are fixed multiples of the window, so
/// the emitted timeline is independent of event spacing — a run that goes
/// quiet for three windows emits its next snapshot at the first boundary
/// after activity resumes, stamped with the boundary it crossed.
///
/// Like the registry itself, the log only *reads* engine state: arming it
/// leaves run output bit-identical.
#[derive(Debug)]
pub struct SnapshotLog {
    window: SimDuration,
    next_due: SimTime,
    lines: Vec<String>,
}

impl SnapshotLog {
    /// Creates a log that snapshots every `window` of sim-time.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    pub fn new(window: SimDuration) -> Self {
        assert!(window.as_micros() > 0, "snapshot window must be positive");
        SnapshotLog {
            window,
            next_due: SimTime::ZERO + window,
            lines: Vec::new(),
        }
    }

    /// Re-bases the window schedule so the first snapshot is due one
    /// window after `now`. Harnesses call this at install time so a log
    /// armed mid-run (e.g. after training) does not backfill a burst of
    /// snapshots for boundaries that predate it.
    pub fn start_at(&mut self, now: SimTime) {
        self.next_due = now + self.window;
    }

    /// Emits a snapshot if `now` has reached the next window boundary.
    /// O(1) when no boundary was crossed.
    pub fn tick(&mut self, now: SimTime, registry: &MetricsRegistry) {
        while now >= self.next_due {
            let stamp = self.next_due;
            self.lines.push(registry.snapshot_json(stamp));
            self.next_due += self.window;
        }
    }

    /// Emits one final snapshot stamped `now` (end of run), regardless of
    /// window alignment.
    pub fn finish(&mut self, now: SimTime, registry: &MetricsRegistry) {
        self.lines.push(registry.snapshot_json(now));
    }

    /// The snapshot lines emitted so far.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Renders the snapshots as a JSONL document (one JSON object per
    /// line, trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        out
    }
}

fn header(out: &mut String, name: &str, kind: &str) {
    let help = help_text(name);
    if !help.is_empty() {
        let _ = writeln!(out, "# HELP {name} {help}");
    }
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn line(out: &mut String, name: &str, lk: &str, lv: &str, value: u64) {
    if lk.is_empty() {
        let _ = writeln!(out, "{name} {value}");
    } else {
        let _ = writeln!(out, "{name}{{{lk}=\"{lv}\"}} {value}");
    }
}

/// Renders the label block for non-bucket histogram series (`_sum`,
/// `_count`): empty for unlabeled metrics.
fn label_block(lk: &str, lv: &str) -> String {
    if lk.is_empty() {
        String::new()
    } else {
        format!("{{{lk}=\"{lv}\"}}")
    }
}

/// Renders one cumulative histogram bucket line with its `le` boundary
/// (merged with the metric's own label pair when present).
fn bucket_line(out: &mut String, name: &str, lk: &str, lv: &str, le: &str, cumulative: u64) {
    if lk.is_empty() {
        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
    } else {
        let _ = writeln!(
            out,
            "{name}_bucket{{{lk}=\"{lv}\",le=\"{le}\"}} {cumulative}"
        );
    }
}

/// `# HELP` strings for the metric names the engines emit. Unknown names
/// export without a HELP line.
fn help_text(name: &str) -> &'static str {
    match name {
        "specfaas_requests_submitted_total" => "Requests submitted to the engine.",
        "specfaas_requests_completed_total" => "Requests that reached a successful terminal.",
        "specfaas_requests_failed_total" => "Requests aborted after exhausting retries.",
        "specfaas_functions_started_total" => "Function instances launched.",
        "specfaas_commits_total" => "Pipeline slots committed in program order.",
        "specfaas_squashes_total" => "Squash events by cause.",
        "specfaas_memo_hits_total" => "Speculative launches satisfied from the memo table.",
        "specfaas_branch_predictions_total" => "Branch predictions by outcome.",
        "specfaas_faults_injected_total" => "Injected faults by site.",
        "specfaas_cold_starts_total" => "Container acquisitions that paid a cold start.",
        "specfaas_warm_starts_total" => "Container acquisitions served from the warm pool.",
        "specfaas_kv_reads_total" => "Key-value store reads issued.",
        "specfaas_kv_writes_total" => "Key-value store writes issued.",
        "specfaas_squashed_core_us_total" => "Core-time wasted on squashed work, microseconds.",
        "specfaas_warm_pool_size" => "Idle warm containers across the cluster.",
        "specfaas_controller_queue_depth" => "Jobs queued or in service at each node controller.",
        "specfaas_busy_cores" => "Occupied execution slots per node.",
        "specfaas_inflight_spec_slots" => "Live function instances launched speculatively.",
        "specfaas_memo_entries" => "Entries resident across all memo tables.",
        "specfaas_outstanding_kv_ops" => "Key-value operations issued but not yet completed.",
        "specfaas_response_latency_us" => {
            "End-to-end response latency of measured requests, microseconds."
        }
        "specfaas_request_squashed_functions" => {
            "Squashed-function count per measured request (squash depth)."
        }
        "specfaas_wasted_core_us_by_function" => {
            "Squashed core-time heavy hitters by app/function, microseconds."
        }
        "specfaas_requests_by_function" => "Request-start heavy hitters by app/function.",
        _ => "",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_inert() {
        let mut r = MetricsRegistry::disabled();
        r.inc("x");
        r.sample(SimTime::ZERO, "g", 1);
        assert!(!r.enabled());
        assert_eq!(r.counter("x", "", ""), 0);
        assert!(r.export_prometheus().is_empty());
        assert!(r.export_csv().is_empty());
    }

    #[test]
    fn counters_accumulate_and_export() {
        let mut r = MetricsRegistry::recording();
        r.inc("specfaas_requests_submitted_total");
        r.inc_by("specfaas_requests_submitted_total", 2);
        r.inc_labeled("specfaas_squashes_total", "cause", "wrong_path");
        assert_eq!(r.counter("specfaas_requests_submitted_total", "", ""), 3);
        let prom = r.export_prometheus();
        assert!(prom.contains("# TYPE specfaas_requests_submitted_total counter"));
        assert!(prom.contains("specfaas_requests_submitted_total 3"));
        assert!(prom.contains("specfaas_squashes_total{cause=\"wrong_path\"} 1"));
    }

    #[test]
    fn gauge_dedupes_consecutive_values_and_overwrites_same_instant() {
        let mut r = MetricsRegistry::recording();
        let t = SimTime::from_millis;
        r.sample(t(1), "g", 5);
        r.sample(t(2), "g", 5); // duplicate value: collapsed
        r.sample(t(3), "g", 7);
        r.sample(t(3), "g", 8); // same instant: last write wins
        assert_eq!(r.gauge_series("g", "", ""), &[(t(1), 5), (t(3), 8)]);
    }

    #[test]
    fn csv_rows_sorted_by_time_then_metric() {
        let mut r = MetricsRegistry::recording();
        let t = SimTime::from_millis;
        r.sample(t(2), "b", 1);
        r.sample(t(1), "z", 9);
        r.sample_labeled(t(2), "a", "node", "0", 4);
        let csv = r.export_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines,
            vec![
                "time_us,metric,label,value",
                "1000,z,,9",
                "2000,a,node=0,4",
                "2000,b,,1",
            ]
        );
    }

    #[test]
    fn histogram_exports_cumulative_le_buckets() {
        let mut r = MetricsRegistry::recording();
        for v in [5u64, 5, 9, 40] {
            r.observe("specfaas_response_latency_us", v);
        }
        let prom = r.export_prometheus();
        assert!(prom.contains("# TYPE specfaas_response_latency_us histogram"));
        assert!(prom.contains("specfaas_response_latency_us_bucket{le=\"5\"} 2"));
        assert!(prom.contains("specfaas_response_latency_us_bucket{le=\"9\"} 3"));
        assert!(prom.contains("specfaas_response_latency_us_bucket{le=\"40\"} 4"));
        assert!(prom.contains("specfaas_response_latency_us_bucket{le=\"+Inf\"} 4"));
        assert!(prom.contains("specfaas_response_latency_us_sum 59"));
        assert!(prom.contains("specfaas_response_latency_us_count 4"));
        let h = r.histogram("specfaas_response_latency_us", "", "").unwrap();
        assert_eq!(h.count(), 4);
        assert_eq!(h.quantile(1.0), 40);
    }

    #[test]
    fn histogram_csv_lists_nonzero_buckets() {
        let mut r = MetricsRegistry::recording();
        r.observe("d", 3);
        r.observe("d", 3);
        r.observe_labeled("d", "app", "x", 7);
        let csv = r.export_histograms_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines,
            vec![
                "metric,label,bucket_lo,bucket_hi,count,cumulative",
                "d,,3,4,2,2",
                "d,app=x,7,8,1,1",
            ]
        );
    }

    #[test]
    fn topk_exports_in_descending_count_order() {
        let mut r = MetricsRegistry::recording();
        r.topk_add("specfaas_wasted_core_us_by_function", "app/b", 10);
        r.topk_add("specfaas_wasted_core_us_by_function", "app/a", 30);
        let prom = r.export_prometheus();
        let b_pos = prom.find("key=\"app/b\"").unwrap();
        let a_pos = prom.find("key=\"app/a\"").unwrap();
        assert!(a_pos < b_pos, "heavier key must render first");
        let sketch = r.topk("specfaas_wasted_core_us_by_function").unwrap();
        assert_eq!(sketch.total(), 40);
    }

    #[test]
    fn snapshot_log_emits_on_window_boundaries() {
        let mut r = MetricsRegistry::recording();
        let mut log = SnapshotLog::new(SimDuration::from_millis(10));
        r.inc("specfaas_requests_completed_total");
        r.observe("specfaas_response_latency_us", 5_000);
        log.tick(SimTime::from_millis(3), &r); // before first boundary
        assert!(log.lines().is_empty());
        log.tick(SimTime::from_millis(25), &r); // crosses 10ms and 20ms
        assert_eq!(log.lines().len(), 2);
        assert!(log.lines()[0].starts_with("{\"t_us\": 10000"));
        assert!(log.lines()[1].starts_with("{\"t_us\": 20000"));
        assert!(log.lines()[0].contains("\"specfaas_requests_completed_total\": 1"));
        assert!(log.lines()[0].contains("\"p50\": 5000"));
        log.finish(SimTime::from_millis(26), &r);
        let jsonl = log.to_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        assert!(jsonl.ends_with('\n'));
    }

    #[test]
    fn prometheus_gauge_reports_last_sample() {
        let mut r = MetricsRegistry::recording();
        r.sample(SimTime::from_millis(1), "specfaas_warm_pool_size", 3);
        r.sample(SimTime::from_millis(9), "specfaas_warm_pool_size", 11);
        let prom = r.export_prometheus();
        assert!(prom.contains("# TYPE specfaas_warm_pool_size gauge"));
        assert!(prom.contains("specfaas_warm_pool_size 11"));
        assert!(!prom.contains("specfaas_warm_pool_size 3"));
    }
}
