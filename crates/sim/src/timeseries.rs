//! Deterministic time-series metrics: counters and event-driven sampled
//! gauges with Prometheus text-exposition and CSV export.
//!
//! [`MetricsRegistry`] follows the same opt-in discipline as the flight
//! recorder ([`crate::trace::Tracer`]): a disabled registry is a single
//! `Option` check per call site, and an *enabled* registry only ever
//! observes engine state — it never draws from the RNG and never touches
//! the event queue — so enabling it leaves run metrics bit-identical to a
//! same-seed run without it.
//!
//! Counters are monotone `u64` totals (requests, squashes, fault
//! injections, ...). Gauges are event-driven samples: the engine pushes
//! `(sim-time, value)` pairs at its own control-flow points (launches,
//! completions, teardowns), and consecutive duplicate values are collapsed
//! so a long steady state costs one sample. All values are integers, which
//! keeps both export formats byte-stable across platforms.
//!
//! # Example
//!
//! ```
//! use specfaas_sim::timeseries::MetricsRegistry;
//! use specfaas_sim::SimTime;
//!
//! let mut reg = MetricsRegistry::recording();
//! reg.inc("specfaas_requests_submitted_total");
//! reg.sample(SimTime::from_millis(2), "specfaas_warm_pool_size", 5);
//! reg.sample_labeled(SimTime::from_millis(3), "specfaas_busy_cores", "node", "0", 12);
//!
//! let prom = reg.export_prometheus();
//! assert!(prom.contains("specfaas_requests_submitted_total 1"));
//! assert!(prom.contains("specfaas_busy_cores{node=\"0\"} 12"));
//!
//! let csv = reg.export_csv();
//! assert!(csv.starts_with("time_us,metric,label,value\n"));
//!
//! // A disabled registry records nothing and costs one branch per call.
//! let mut off = MetricsRegistry::disabled();
//! off.inc("specfaas_requests_submitted_total");
//! assert!(!off.enabled());
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::time::SimTime;

/// Metric identity: name plus at most one label pair. Unlabeled metrics
/// use empty strings for both label fields. `BTreeMap` keying on this
/// tuple gives a deterministic export order for free.
type Key = (&'static str, &'static str, String);

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, Vec<(SimTime, u64)>>,
}

/// A deterministic metrics registry: counters plus event-driven sampled
/// gauges, exportable as Prometheus text exposition or CSV.
///
/// See the [module documentation](self) for the determinism contract and a
/// usage example.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Option<Box<RegistryInner>>,
}

impl MetricsRegistry {
    /// A registry that records nothing; every operation is a no-op behind
    /// a single branch.
    pub fn disabled() -> Self {
        MetricsRegistry { inner: None }
    }

    /// A registry that records counters and gauge samples.
    pub fn recording() -> Self {
        MetricsRegistry {
            inner: Some(Box::default()),
        }
    }

    /// Whether this registry records anything. Engines consult this before
    /// doing any sampling work.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Increments the unlabeled counter `name` by one.
    pub fn inc(&mut self, name: &'static str) {
        self.inc_by(name, 1);
    }

    /// Increments the unlabeled counter `name` by `by`.
    pub fn inc_by(&mut self, name: &'static str, by: u64) {
        if let Some(inner) = self.inner.as_deref_mut() {
            *inner.counters.entry((name, "", String::new())).or_insert(0) += by;
        }
    }

    /// Increments the counter `name{label_key="label_value"}` by `by`.
    pub fn inc_labeled(&mut self, name: &'static str, label_key: &'static str, label_value: &str) {
        if let Some(inner) = self.inner.as_deref_mut() {
            *inner
                .counters
                .entry((name, label_key, label_value.to_string()))
                .or_insert(0) += 1;
        }
    }

    /// Records a sample of the unlabeled gauge `name` at sim-time `now`.
    ///
    /// Samples at the same instant overwrite each other (the last write at
    /// a timestamp wins) and consecutive duplicate values are collapsed.
    pub fn sample(&mut self, now: SimTime, name: &'static str, value: u64) {
        self.sample_labeled(now, name, "", "", value);
    }

    /// Records a sample of the gauge `name{label_key="label_value"}`.
    pub fn sample_labeled(
        &mut self,
        now: SimTime,
        name: &'static str,
        label_key: &'static str,
        label_value: &str,
        value: u64,
    ) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        let series = inner
            .gauges
            .entry((name, label_key, label_value.to_string()))
            .or_default();
        match series.last_mut() {
            Some((t, v)) if *t == now => *v = value,
            Some((_, v)) if *v == value => {}
            _ => series.push((now, value)),
        }
    }

    /// Current value of a counter (0 if never incremented). Unlabeled
    /// counters use empty strings for both label fields.
    pub fn counter(&self, name: &str, label_key: &str, label_value: &str) -> u64 {
        self.inner
            .as_deref()
            .and_then(|i| {
                i.counters
                    .iter()
                    .find(|((n, lk, lv), _)| *n == name && *lk == label_key && lv == label_value)
                    .map(|(_, v)| *v)
            })
            .unwrap_or(0)
    }

    /// The recorded sample series of a gauge (empty if never sampled).
    pub fn gauge_series(
        &self,
        name: &str,
        label_key: &str,
        label_value: &str,
    ) -> &[(SimTime, u64)] {
        self.inner
            .as_deref()
            .and_then(|i| {
                i.gauges
                    .iter()
                    .find(|((n, lk, lv), _)| *n == name && *lk == label_key && lv == label_value)
                    .map(|(_, v)| v.as_slice())
            })
            .unwrap_or(&[])
    }

    /// Renders the registry in Prometheus text exposition format (version
    /// 0.0.4): `# HELP` / `# TYPE` headers per metric, counters as their
    /// running totals, gauges as their most recent sampled value.
    ///
    /// Output is byte-deterministic: metrics sort by `(name, label)` and
    /// all values are integers.
    pub fn export_prometheus(&self) -> String {
        let Some(inner) = self.inner.as_deref() else {
            return String::new();
        };
        let mut out = String::new();
        let mut last_name = "";
        for ((name, lk, lv), value) in &inner.counters {
            if *name != last_name {
                header(&mut out, name, "counter");
                last_name = name;
            }
            line(&mut out, name, lk, lv, *value);
        }
        last_name = "";
        for ((name, lk, lv), series) in &inner.gauges {
            if *name != last_name {
                header(&mut out, name, "gauge");
                last_name = name;
            }
            if let Some((_, v)) = series.last() {
                line(&mut out, name, lk, lv, *v);
            }
        }
        out
    }

    /// Renders every gauge sample as CSV with header
    /// `time_us,metric,label,value`, rows sorted by `(time, metric,
    /// label)`. Counters are totals, not series, and are exported via
    /// [`MetricsRegistry::export_prometheus`] instead.
    pub fn export_csv(&self) -> String {
        let Some(inner) = self.inner.as_deref() else {
            return String::new();
        };
        let mut rows: Vec<(SimTime, &str, &str, &str, u64)> = Vec::new();
        for ((name, lk, lv), series) in &inner.gauges {
            for (t, v) in series {
                rows.push((*t, name, lk, lv, *v));
            }
        }
        rows.sort();
        let mut out = String::from("time_us,metric,label,value\n");
        for (t, name, lk, lv, v) in rows {
            if lk.is_empty() {
                let _ = writeln!(out, "{},{},,{}", t.as_micros(), name, v);
            } else {
                let _ = writeln!(out, "{},{},{}={},{}", t.as_micros(), name, lk, lv, v);
            }
        }
        out
    }
}

fn header(out: &mut String, name: &str, kind: &str) {
    let help = help_text(name);
    if !help.is_empty() {
        let _ = writeln!(out, "# HELP {name} {help}");
    }
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn line(out: &mut String, name: &str, lk: &str, lv: &str, value: u64) {
    if lk.is_empty() {
        let _ = writeln!(out, "{name} {value}");
    } else {
        let _ = writeln!(out, "{name}{{{lk}=\"{lv}\"}} {value}");
    }
}

/// `# HELP` strings for the metric names the engines emit. Unknown names
/// export without a HELP line.
fn help_text(name: &str) -> &'static str {
    match name {
        "specfaas_requests_submitted_total" => "Requests submitted to the engine.",
        "specfaas_requests_completed_total" => "Requests that reached a successful terminal.",
        "specfaas_requests_failed_total" => "Requests aborted after exhausting retries.",
        "specfaas_functions_started_total" => "Function instances launched.",
        "specfaas_commits_total" => "Pipeline slots committed in program order.",
        "specfaas_squashes_total" => "Squash events by cause.",
        "specfaas_memo_hits_total" => "Speculative launches satisfied from the memo table.",
        "specfaas_branch_predictions_total" => "Branch predictions by outcome.",
        "specfaas_faults_injected_total" => "Injected faults by site.",
        "specfaas_cold_starts_total" => "Container acquisitions that paid a cold start.",
        "specfaas_warm_starts_total" => "Container acquisitions served from the warm pool.",
        "specfaas_kv_reads_total" => "Key-value store reads issued.",
        "specfaas_kv_writes_total" => "Key-value store writes issued.",
        "specfaas_squashed_core_us_total" => "Core-time wasted on squashed work, microseconds.",
        "specfaas_warm_pool_size" => "Idle warm containers across the cluster.",
        "specfaas_controller_queue_depth" => "Jobs queued or in service at each node controller.",
        "specfaas_busy_cores" => "Occupied execution slots per node.",
        "specfaas_inflight_spec_slots" => "Live function instances launched speculatively.",
        "specfaas_memo_entries" => "Entries resident across all memo tables.",
        "specfaas_outstanding_kv_ops" => "Key-value operations issued but not yet completed.",
        _ => "",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_inert() {
        let mut r = MetricsRegistry::disabled();
        r.inc("x");
        r.sample(SimTime::ZERO, "g", 1);
        assert!(!r.enabled());
        assert_eq!(r.counter("x", "", ""), 0);
        assert!(r.export_prometheus().is_empty());
        assert!(r.export_csv().is_empty());
    }

    #[test]
    fn counters_accumulate_and_export() {
        let mut r = MetricsRegistry::recording();
        r.inc("specfaas_requests_submitted_total");
        r.inc_by("specfaas_requests_submitted_total", 2);
        r.inc_labeled("specfaas_squashes_total", "cause", "wrong_path");
        assert_eq!(r.counter("specfaas_requests_submitted_total", "", ""), 3);
        let prom = r.export_prometheus();
        assert!(prom.contains("# TYPE specfaas_requests_submitted_total counter"));
        assert!(prom.contains("specfaas_requests_submitted_total 3"));
        assert!(prom.contains("specfaas_squashes_total{cause=\"wrong_path\"} 1"));
    }

    #[test]
    fn gauge_dedupes_consecutive_values_and_overwrites_same_instant() {
        let mut r = MetricsRegistry::recording();
        let t = SimTime::from_millis;
        r.sample(t(1), "g", 5);
        r.sample(t(2), "g", 5); // duplicate value: collapsed
        r.sample(t(3), "g", 7);
        r.sample(t(3), "g", 8); // same instant: last write wins
        assert_eq!(r.gauge_series("g", "", ""), &[(t(1), 5), (t(3), 8)]);
    }

    #[test]
    fn csv_rows_sorted_by_time_then_metric() {
        let mut r = MetricsRegistry::recording();
        let t = SimTime::from_millis;
        r.sample(t(2), "b", 1);
        r.sample(t(1), "z", 9);
        r.sample_labeled(t(2), "a", "node", "0", 4);
        let csv = r.export_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines,
            vec![
                "time_us,metric,label,value",
                "1000,z,,9",
                "2000,a,node=0,4",
                "2000,b,,1",
            ]
        );
    }

    #[test]
    fn prometheus_gauge_reports_last_sample() {
        let mut r = MetricsRegistry::recording();
        r.sample(SimTime::from_millis(1), "specfaas_warm_pool_size", 3);
        r.sample(SimTime::from_millis(9), "specfaas_warm_pool_size", 11);
        let prom = r.export_prometheus();
        assert!(prom.contains("# TYPE specfaas_warm_pool_size gauge"));
        assert!(prom.contains("specfaas_warm_pool_size 11"));
        assert!(!prom.contains("specfaas_warm_pool_size 3"));
    }
}
