//! Deterministic synthetic Azure-style trace generation for scale runs.
//!
//! Production FaaS traffic (e.g. the Azure Functions traces used by SeBS
//! and much follow-on work) has two load-bearing properties that the
//! short closed/open-loop benches cannot exhibit:
//!
//! 1. **Diurnal rate variation** — the fleet-wide arrival rate swings
//!    around its mean over the day, so warm pools are sized for peaks and
//!    drain in troughs.
//! 2. **Heavy-tailed tenant popularity** — a handful of tenant apps
//!    receive most invocations while a long tail goes nearly idle (and
//!    therefore cold).
//!
//! [`TraceGen`] produces an arrival stream with both properties while
//! staying **byte-reproducible**: the same [`TraceConfig`] always yields
//! the identical sequence of [`Arrival`] values, independent of batch
//! size, host, or how many worker threads consume the stream. Arrivals
//! are emitted in a strict `(time, seq)` total order with a dense `seq`
//! counter, so per-tenant sub-streams can be split out and merged back
//! deterministically.
//!
//! The diurnal "day" is time-compressed (default 120 simulated seconds
//! per cycle) so even short runs sweep full peak/trough cycles.
//!
//! # Determinism and sharding
//!
//! Tenant popularity ranks come from [`ZipfTable`], which derives its
//! rank permutation from `(seed, tenants)` alone — never from how many
//! arrivals are drawn or which shard draws them — so popularity ranks
//! are stable when experiment cells re-derive the table under `--jobs`
//! sharding. The arrival process and the rank permutation use distinct
//! decorrelated RNG streams split from the same seed.
//!
//! # Example
//!
//! ```
//! use specfaas_sim::tracegen::{TraceConfig, TraceGen};
//!
//! let cfg = TraceConfig::new(100, 1_000, 42);
//! let a: Vec<_> = TraceGen::new(cfg.clone()).collect();
//! let b: Vec<_> = TraceGen::new(cfg).collect();
//! assert_eq!(a, b); // byte-reproducible
//! assert_eq!(a.len(), 1_000);
//! ```

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Stream constant decorrelating the arrival-process RNG from the seed.
const ARRIVAL_STREAM: u64 = 0xA221_7A1F_0F1E_ED01;
/// Stream constant decorrelating the rank-permutation RNG from the seed.
const RANK_STREAM: u64 = 0x2A9F_5EED_D15C_0C0D;

/// One request arrival in a generated trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Arrival {
    /// Arrival instant on the simulated clock.
    pub time: SimTime,
    /// Dense per-trace sequence number (0, 1, 2, …) — the tie-breaker
    /// that makes `(time, seq)` a total order.
    pub seq: u64,
    /// The tenant receiving this request.
    pub tenant: u32,
}

impl Arrival {
    /// Appends this arrival's canonical 20-byte little-endian encoding
    /// (`time_micros:u64, seq:u64, tenant:u32`) to `out`. Two traces are
    /// byte-identical iff their encoded streams are equal.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.time.as_micros().to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.tenant.to_le_bytes());
    }
}

/// Canonical byte encoding of an arrival stream (see [`Arrival::encode`]).
pub fn encode_stream(arrivals: &[Arrival]) -> Vec<u8> {
    let mut out = Vec::with_capacity(arrivals.len() * 20);
    for a in arrivals {
        a.encode(&mut out);
    }
    out
}

/// Parameters of a synthetic trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Number of tenant applications.
    pub tenants: u32,
    /// Total arrivals to generate.
    pub requests: u64,
    /// Master seed; every derived RNG stream splits from this.
    pub seed: u64,
    /// Fleet-wide mean arrival rate (requests per second).
    pub mean_rps: f64,
    /// Zipf exponent of the tenant popularity distribution.
    pub zipf_exponent: f64,
    /// Relative amplitude of the diurnal rate swing in `[0, 1)`:
    /// the rate oscillates in `mean_rps * [1 - a, 1 + a]`.
    pub diurnal_amplitude: f64,
    /// Length of one compressed diurnal cycle.
    pub diurnal_period: SimDuration,
}

impl TraceConfig {
    /// A config with the default traffic shape: 2 000 rps mean rate,
    /// Zipf exponent 1.1, ±60 % diurnal swing over a 120 s compressed
    /// day.
    pub fn new(tenants: u32, requests: u64, seed: u64) -> Self {
        TraceConfig {
            tenants,
            requests,
            seed,
            mean_rps: 2_000.0,
            zipf_exponent: 1.1,
            diurnal_amplitude: 0.6,
            diurnal_period: SimDuration::from_secs(120),
        }
    }
}

/// Precomputed Zipf sampler over tenant ids with seed-stable ranks.
///
/// `SimRng::zipf` recomputes the normalization sum on every draw — O(n)
/// per sample, fine for hundreds of keys but not for 10⁴ tenants × 10⁶
/// arrivals. This table pays the O(n) cost once (cumulative weights) and
/// samples by binary search in O(log n).
///
/// Rank assignment: a seeded Fisher–Yates permutation maps popularity
/// rank *r* (0 = hottest) to a tenant id, so the hot set is scattered
/// across the id space rather than always being tenants 0..k. The
/// permutation depends only on `(seed, tenants)`.
#[derive(Debug, Clone)]
pub struct ZipfTable {
    /// `cum[r]` = total weight of ranks `0..=r` (unnormalized).
    cum: Vec<f64>,
    /// Popularity rank → tenant id.
    rank_to_tenant: Vec<u32>,
    /// Tenant id → popularity rank.
    tenant_to_rank: Vec<u32>,
}

impl ZipfTable {
    /// Builds the table for `tenants` ids with exponent `s`.
    ///
    /// # Panics
    /// Panics if `tenants == 0` or `s` is not finite.
    pub fn new(tenants: u32, s: f64, seed: u64) -> Self {
        assert!(tenants > 0, "zipf table needs at least one tenant");
        assert!(s.is_finite(), "zipf exponent must be finite");
        let n = tenants as usize;
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0;
        for r in 0..n {
            total += ((r + 1) as f64).powf(-s);
            cum.push(total);
        }
        let mut rank_to_tenant: Vec<u32> = (0..tenants).collect();
        let mut rng = SimRng::seed(seed ^ RANK_STREAM);
        rng.shuffle(&mut rank_to_tenant);
        let mut tenant_to_rank = vec![0u32; n];
        for (rank, &t) in rank_to_tenant.iter().enumerate() {
            tenant_to_rank[t as usize] = rank as u32;
        }
        ZipfTable {
            cum,
            rank_to_tenant,
            tenant_to_rank,
        }
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.cum.len()
    }

    /// True if the table is empty (cannot happen via [`ZipfTable::new`]).
    pub fn is_empty(&self) -> bool {
        self.cum.is_empty()
    }

    /// The tenant holding popularity rank `rank` (0 = hottest).
    pub fn tenant_of_rank(&self, rank: u32) -> u32 {
        self.rank_to_tenant[rank as usize]
    }

    /// The popularity rank of `tenant` (0 = hottest).
    pub fn rank_of_tenant(&self, tenant: u32) -> u32 {
        self.tenant_to_rank[tenant as usize]
    }

    /// Draws a tenant id with Zipf-distributed popularity. One uniform
    /// draw plus an O(log n) binary search.
    pub fn sample(&mut self, rng: &mut SimRng) -> u32 {
        let total = *self.cum.last().expect("non-empty table");
        let u = rng.uniform_f64() * total;
        let rank = self.cum.partition_point(|&c| c < u).min(self.cum.len() - 1);
        self.rank_to_tenant[rank]
    }

    /// Approximate heap footprint of the table in bytes.
    pub fn mem_bytes(&self) -> u64 {
        (self.cum.capacity() * 8
            + self.rank_to_tenant.capacity() * 4
            + self.tenant_to_rank.capacity() * 4) as u64
    }
}

/// Streaming generator of a deterministic multi-tenant arrival trace.
///
/// A non-homogeneous Poisson process with rate
/// `λ(t) = mean_rps · (1 + a·sin(2πt/period))`, realized by thinning
/// (Lewis–Shedler): candidates arrive at the homogeneous peak rate
/// `λ_max = mean_rps·(1 + a)` and are accepted with probability
/// `λ(t)/λ_max`. Tenants are drawn from [`ZipfTable`].
///
/// The generator is an [`Iterator`]; [`TraceGen::fill`] appends arrivals
/// in batches so drivers can amortize per-arrival call overhead.
#[derive(Debug, Clone)]
pub struct TraceGen {
    cfg: TraceConfig,
    zipf: ZipfTable,
    rng: SimRng,
    /// Current candidate-process time.
    now: SimTime,
    /// Next sequence number to emit.
    next_seq: u64,
    /// Hoisted `1 / λ_max` — the only division in the hot loop.
    inv_lambda_max: f64,
    /// Hoisted `2π / period_secs`.
    omega: f64,
}

impl TraceGen {
    /// Creates a generator for `cfg`.
    ///
    /// # Panics
    /// Panics if the config has no tenants, a non-positive rate, an
    /// amplitude outside `[0, 1)`, or a zero period.
    pub fn new(cfg: TraceConfig) -> Self {
        assert!(cfg.tenants > 0, "trace needs at least one tenant");
        assert!(
            cfg.mean_rps.is_finite() && cfg.mean_rps > 0.0,
            "mean_rps must be positive"
        );
        assert!(
            (0.0..1.0).contains(&cfg.diurnal_amplitude),
            "diurnal amplitude must be in [0, 1)"
        );
        let period = cfg.diurnal_period.as_secs_f64();
        assert!(period > 0.0, "diurnal period must be positive");
        let lambda_max = cfg.mean_rps * (1.0 + cfg.diurnal_amplitude);
        let zipf = ZipfTable::new(cfg.tenants, cfg.zipf_exponent, cfg.seed);
        let rng = SimRng::seed(cfg.seed ^ ARRIVAL_STREAM);
        TraceGen {
            inv_lambda_max: 1.0 / lambda_max,
            omega: std::f64::consts::TAU / period,
            cfg,
            zipf,
            rng,
            now: SimTime::ZERO,
            next_seq: 0,
        }
    }

    /// The instantaneous arrival rate at `t` (requests per second).
    pub fn rate_at(&self, t: SimTime) -> f64 {
        let phase = (self.omega * t.as_secs_f64()).sin();
        self.cfg.mean_rps * (1.0 + self.cfg.diurnal_amplitude * phase)
    }

    /// The popularity table used for tenant selection.
    pub fn zipf(&self) -> &ZipfTable {
        &self.zipf
    }

    /// Arrivals generated so far.
    pub fn generated(&self) -> u64 {
        self.next_seq
    }

    /// True when the configured request count has been emitted.
    pub fn exhausted(&self) -> bool {
        self.next_seq >= self.cfg.requests
    }

    /// Appends up to `max` arrivals to `out`, returning how many were
    /// appended (0 only when the trace is exhausted). Batching lets
    /// drivers pull thousands of arrivals per call instead of paying the
    /// per-arrival call overhead on the simulation hot path.
    pub fn fill(&mut self, out: &mut Vec<Arrival>, max: usize) -> usize {
        let mut produced = 0;
        // Hoisted constants: the candidate gap needs one multiply + ln per
        // candidate; the acceptance test one sin + multiply.
        let amp = self.cfg.diurnal_amplitude;
        let inv_peak = 1.0 / (1.0 + amp);
        while produced < max && self.next_seq < self.cfg.requests {
            // Candidate gap: exponential with mean 1/λ_max. Open-interval
            // draw (never 0) keeps ln() finite; matches SimRng::exponential.
            let u = loop {
                let u = self.rng.uniform_f64();
                if u > 0.0 {
                    break u;
                }
            };
            let gap_secs = -self.inv_lambda_max * u.ln();
            self.now += SimDuration::from_secs_f64(gap_secs).max(SimDuration::from_micros(1));
            // Thinning: accept with probability λ(t)/λ_max.
            let phase = (self.omega * self.now.as_secs_f64()).sin();
            let accept_p = (1.0 + amp * phase) * inv_peak;
            if self.rng.uniform_f64() >= accept_p {
                continue;
            }
            let tenant = self.zipf.sample(&mut self.rng);
            out.push(Arrival {
                time: self.now,
                seq: self.next_seq,
                tenant,
            });
            self.next_seq += 1;
            produced += 1;
        }
        produced
    }
}

impl Iterator for TraceGen {
    type Item = Arrival;

    fn next(&mut self) -> Option<Arrival> {
        let mut one = Vec::with_capacity(1);
        if self.fill(&mut one, 1) == 1 {
            Some(one[0])
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_fill_matches_iterator() {
        let cfg = TraceConfig::new(64, 5_000, 9);
        let via_iter: Vec<_> = TraceGen::new(cfg.clone()).collect();
        let mut gen = TraceGen::new(cfg);
        let mut via_fill = Vec::new();
        while gen.fill(&mut via_fill, 777) > 0 {}
        assert_eq!(via_iter, via_fill);
    }

    #[test]
    fn mean_rate_close_to_configured() {
        let mut cfg = TraceConfig::new(32, 200_000, 3);
        cfg.mean_rps = 1_000.0;
        // Average over whole diurnal cycles: a partial final cycle would
        // bias the measured mean toward whichever half it ends in.
        cfg.diurnal_period = SimDuration::from_secs(10);
        let arrivals: Vec<_> = TraceGen::new(cfg.clone()).collect();
        let period = cfg.diurnal_period.as_micros();
        let span = arrivals.last().unwrap().time.as_micros();
        let whole = span / period * period;
        let n = arrivals
            .iter()
            .filter(|a| a.time.as_micros() < whole)
            .count();
        let rate = n as f64 / (whole as f64 / 1e6);
        assert!(
            (rate - 1_000.0).abs() < 50.0,
            "measured {rate} rps, want ~1000"
        );
    }

    #[test]
    fn diurnal_rate_actually_swings() {
        let cfg = TraceConfig::new(8, 100_000, 5);
        let gen = TraceGen::new(cfg.clone());
        let period = cfg.diurnal_period;
        let peak = gen.rate_at(SimTime::ZERO + period.mul_f64(0.25));
        let trough = gen.rate_at(SimTime::ZERO + period.mul_f64(0.75));
        assert!(peak > cfg.mean_rps * 1.5);
        assert!(trough < cfg.mean_rps * 0.5);
        // Empirically: count arrivals in peak vs trough quarters of each
        // cycle; the peak quarter must dominate.
        let (mut hi, mut lo) = (0u64, 0u64);
        let p = period.as_micros();
        for a in TraceGen::new(cfg) {
            let phase = a.time.as_micros() % p;
            if phase < p / 2 {
                hi += 1;
            } else {
                lo += 1;
            }
        }
        assert!(hi as f64 > lo as f64 * 1.5, "hi={hi} lo={lo}");
    }

    #[test]
    fn zipf_table_rejects_empty() {
        let r = std::panic::catch_unwind(|| ZipfTable::new(0, 1.0, 1));
        assert!(r.is_err());
    }

    #[test]
    fn rank_mappings_are_inverse() {
        let t = ZipfTable::new(257, 1.1, 12);
        for tenant in 0..257 {
            assert_eq!(t.tenant_of_rank(t.rank_of_tenant(tenant)), tenant);
        }
    }
}
