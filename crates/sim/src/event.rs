//! The event queue at the heart of the simulator — a hierarchical
//! calendar-bucket queue.
//!
//! Events are ordered by simulated time with FIFO tie-breaking (insertion
//! order), which keeps runs fully deterministic: the serverless platform
//! built on top relies on stable ordering so that, e.g., a function-complete
//! event scheduled before a request-arrival event at the same instant is
//! always delivered first.
//!
//! # Layout
//!
//! A binary heap pays `O(log n)` pointer-chasing per operation, which showed
//! up as a 5× per-op slowdown between 1k and 100k pending events. The queue
//! is therefore split into two tiers keyed by distance from the clock:
//!
//! * **Near-future wheel** — a ring of `NUM_BUCKETS` buckets, each covering
//!   `1 << shift` microseconds. An event at absolute bucket
//!   `b = at >> shift` lands in cell `b & (NUM_BUCKETS - 1)` as long as it
//!   is within the wheel horizon (`NUM_BUCKETS` buckets past the clock).
//!   Insertion is an `O(1)` push onto an unsorted bucket; a bucket is
//!   sorted once, lazily, when the clock reaches it (the *current* bucket),
//!   after which it is drained from the back. A two-level occupancy bitmap
//!   (one bit per cell) finds the next non-empty cell in a handful of word
//!   operations, so sparse wheels never pay a linear cell scan.
//! * **Far-future overflow heap** — events beyond the horizon go to a
//!   plain binary heap of 24-byte keys. They are few (long keep-alive
//!   timers, watchdogs), and are popped directly from the heap when they
//!   become the global minimum; no migration pass is needed for
//!   correctness.
//!
//! Payloads never move through either structure: they live in the
//! *slot arena* (the same slab that backs the slot/generation cancel
//! scheme), and bucket/heap entries are plain `(time, seq, slot)` keys.
//! The bucket width adapts: if the overflow heap starts dominating or one
//! bucket grows pathologically dense, the queue rebuilds itself with a
//! width fitted to the observed pending-event span (a deterministic
//! function of the operation sequence, so replays stay bit-identical).
//!
//! # Determinism
//!
//! Delivery order is the total order `(time, seq)` where `seq` is a global
//! insertion counter — exactly the contract of the previous heap-based
//! queue. The wheel cannot perturb it: absolute bucket index is a monotone
//! function of time, buckets are visited in index order, the current bucket
//! is sorted by `(time, seq)` before draining, and overflow events compare
//! against the wheel candidate under the same key. Bucket-width rebuilds
//! and tombstone compaction only move or drop entries — keys never change —
//! so any interleaving of schedule/cancel/step yields the same deliveries
//! as a sorted list (asserted against a reference model in
//! `tests/event_queue_model.rs`).
//!
//! # Cancellation
//!
//! Cancellation is O(1): every scheduled event owns a *slot* in the arena
//! with a generation counter, and [`Simulator::cancel`] flips the slot
//! state and frees the payload immediately, without touching the wheel or
//! heap. The dead key left behind (a 24-byte tombstone) is reaped when its
//! bucket is drained — and, so tombstones cannot accumulate unboundedly
//! under cancel-heavy load, a lazy compaction sweep reclaims all of them
//! whenever they outnumber live events. [`Simulator::pending`] and
//! [`Simulator::peek_time`] stay exact *and* O(1): the queue caches the
//! key of the minimum live event and refreshes it whenever that exact
//! event is cancelled or delivered.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// Number of wheel buckets. Power of two; the wheel spans
/// `NUM_BUCKETS << shift` microseconds past the clock.
const NUM_BUCKETS: usize = 2048;
/// Ring-index mask (`NUM_BUCKETS` is a power of two).
const BUCKET_MASK: u64 = NUM_BUCKETS as u64 - 1;
/// Initial bucket width exponent: `1 << 10` µs ≈ 1 ms per bucket, a 2.1 s
/// horizon — fits every service-time/arrival event the platform schedules.
const INITIAL_SHIFT: u32 = 10;
/// Tombstone-compaction threshold: sweep when dead keys outnumber live
/// events and there are at least this many of them.
const COMPACT_MIN_DEAD: usize = 1024;
/// Rebuild trigger: overflow population that suggests the bucket width no
/// longer matches the workload's scheduling horizon.
const REBUILD_MIN_FAR: usize = 1024;
/// Rebuild trigger: a single bucket denser than this suggests the width is
/// too coarse.
const REBUILD_DENSE_BUCKET: usize = 8192;

/// Identifier of a scheduled event, usable to cancel it before it fires.
///
/// Returned by [`Simulator::schedule_at`] / [`Simulator::schedule_in`].
/// Internally packs an arena slot index and a generation counter, so ids of
/// events that already fired (whose slot has been recycled) are recognized
/// as stale in O(1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId {
    slot: u32,
    gen: u32,
}

/// Lifecycle of an arena slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// Scheduled and not cancelled; the wheel or overflow heap holds a
    /// matching key.
    Live,
    /// Cancelled (payload already dropped) but the key has not yet been
    /// reaped.
    Cancelled,
    /// No event owns this slot (fired, or reaped after cancel).
    Free,
}

/// One arena slot: generation + state + payload.
///
/// Deliberately minimal — the event's `(at, seq)` key lives only in the
/// wheel/heap entries, so the arena stays as small as possible (the slot
/// array is the queue's random-access working set; at 100k pending its
/// footprint decides whether the hot path runs from cache or DRAM).
#[derive(Debug)]
struct Slot<E> {
    gen: u32,
    state: SlotState,
    /// True when the key lives in the overflow heap rather than the wheel.
    far: bool,
    payload: Option<E>,
}

/// A 24-byte queue key: everything needed to order an event and find its
/// payload in the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl Entry {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// Overflow-heap wrapper: min-heap by `(at, seq)`.
#[derive(Debug, PartialEq, Eq)]
struct FarEntry(Entry);

impl PartialOrd for FarEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FarEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest key pops first,
        // lowest sequence number breaking ties (FIFO).
        other.0.key().cmp(&self.0.key())
    }
}

/// Where `find_min` located the minimum live event.
#[derive(Debug, Clone, Copy)]
enum MinLoc {
    /// Back of the sorted current bucket (ring cell index).
    Wheel(usize),
    /// Head of the overflow heap.
    Far,
}

/// A discrete-event simulator: virtual clock plus pending-event queue.
///
/// The simulator is intentionally passive — it owns time and the queue, and
/// the caller drives the loop. This avoids callback-trait gymnastics and
/// lets the platform layer keep full mutable access to its own state while
/// handling each event:
///
/// ```
/// use specfaas_sim::{Simulator, SimDuration};
///
/// enum Ev { Tick }
///
/// let mut sim = Simulator::new();
/// sim.schedule_in(SimDuration::from_millis(1), Ev::Tick);
/// let mut ticks = 0;
/// while let Some((_, Ev::Tick)) = sim.step() {
///     ticks += 1;
///     if ticks < 3 {
///         sim.schedule_in(SimDuration::from_millis(1), Ev::Tick);
///     }
/// }
/// assert_eq!(ticks, 3);
/// assert_eq!(sim.now().as_millis(), 3);
/// ```
#[derive(Debug)]
pub struct Simulator<E> {
    now: SimTime,
    next_seq: u64,
    /// Payload arena, indexed by slot.
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    live: usize,
    delivered: u64,

    // Calendar wheel.
    buckets: Vec<Vec<Entry>>,
    /// Bucket width is `1 << shift` microseconds.
    shift: u32,
    /// Absolute bucket index of the clock (`now >> shift`); the wheel
    /// covers absolute buckets `[base, base + NUM_BUCKETS)`.
    base: u64,
    /// Occupancy bitmap: bit per ring cell, one `u64` per 64 cells.
    occ: Vec<u64>,
    /// Absolute bucket index whose ring cell is currently sorted
    /// (descending by key; drained from the back).
    sorted_bucket: Option<u64>,
    /// Live events resident in the wheel (the rest are in `far`).
    wheel_live: usize,

    /// Overflow heap for events beyond the wheel horizon.
    far: BinaryHeap<FarEntry>,

    /// Cancelled keys not yet reaped (wheel + overflow).
    dead: usize,
    /// Cached entry of the minimum live event; `None` iff `live == 0`.
    /// Carries the slot index so `cancel` can tell in O(1) whether it just
    /// killed the minimum, and so the next payload line can be prefetched.
    head: Option<Entry>,
    /// Schedules since the last width rebuild (thrash guard).
    ops_since_rebuild: usize,
    /// Set when an insert pushed some bucket past [`REBUILD_DENSE_BUCKET`]
    /// — an O(1) hint so the rebuild check never scans the wheel.
    dense_hint: bool,
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulator<E> {
    /// Creates an empty simulator with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Simulator {
            now: SimTime::ZERO,
            next_seq: 0,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            delivered: 0,
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            shift: INITIAL_SHIFT,
            base: 0,
            occ: vec![0u64; NUM_BUCKETS / 64],
            sorted_bucket: None,
            wheel_live: 0,
            far: BinaryHeap::new(),
            dead: 0,
            head: None,
            ops_since_rebuild: 0,
            dense_hint: false,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far via [`Simulator::step`].
    pub fn events_delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of live (scheduled, not cancelled, not yet fired) events.
    pub fn pending(&self) -> usize {
        self.live
    }

    /// True when no live events remain.
    pub fn is_idle(&self) -> bool {
        self.live == 0
    }

    /// Allocates an arena slot for a freshly scheduled event.
    fn alloc_slot(&mut self, far: bool, payload: E) -> u32 {
        if let Some(idx) = self.free.pop() {
            let s = &mut self.slots[idx as usize];
            debug_assert_eq!(s.state, SlotState::Free);
            s.state = SlotState::Live;
            s.far = far;
            s.payload = Some(payload);
            idx
        } else {
            let idx = self.slots.len() as u32;
            self.slots.push(Slot {
                gen: 0,
                state: SlotState::Live,
                far,
                payload: Some(payload),
            });
            idx
        }
    }

    /// Returns a slot to the free list, bumping its generation so stale
    /// [`EventId`]s can never alias the next occupant.
    fn release_slot(&mut self, idx: u32) {
        let s = &mut self.slots[idx as usize];
        s.state = SlotState::Free;
        s.gen = s.gen.wrapping_add(1);
        s.payload = None;
        self.free.push(idx);
    }

    /// Ring cell index of absolute bucket `b`.
    #[inline]
    fn cell_of(b: u64) -> usize {
        (b & BUCKET_MASK) as usize
    }

    /// Hints the CPU to pull `slots[slot]` into cache. The next event's
    /// payload line is the hot path's one unavoidable random access; issuing
    /// the prefetch when the head is cached (one op ahead of the read) hides
    /// most of its latency. Purely advisory — no semantic effect.
    #[inline]
    fn prefetch_slot(&self, slot: u32) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `slot` indexes a live arena entry, so the pointer is
        // in-bounds; prefetch has no memory effects regardless.
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(
                self.slots.as_ptr().add(slot as usize) as *const i8,
                _MM_HINT_T0,
            );
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = slot;
    }

    /// Marks a ring cell occupied in the bitmap.
    #[inline]
    fn occ_set(&mut self, cell: usize) {
        self.occ[cell >> 6] |= 1u64 << (cell & 63);
    }

    /// Marks a ring cell empty in the bitmap.
    #[inline]
    fn occ_clear(&mut self, cell: usize) {
        self.occ[cell >> 6] &= !(1u64 << (cell & 63));
    }

    /// First occupied ring cell at or cyclically after `start`, if any.
    fn next_occupied(&self, start: usize) -> Option<usize> {
        let words = self.occ.len();
        let w0 = start >> 6;
        let masked = self.occ[w0] & (!0u64 << (start & 63));
        if masked != 0 {
            return Some((w0 << 6) + masked.trailing_zeros() as usize);
        }
        // Walk the remaining words cyclically; the final iteration re-reads
        // w0 in full, covering bits below `start`.
        for i in 1..=words {
            let w = (w0 + i) % words;
            let bits = self.occ[w];
            if bits != 0 {
                return Some((w << 6) + bits.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Inserts a key into the wheel or the overflow heap. Returns whether
    /// it went to the overflow heap.
    fn insert_entry(&mut self, e: Entry) -> bool {
        let b = e.at.as_micros() >> self.shift;
        debug_assert!(b >= self.base, "entry behind the wheel base");
        if b < self.base + NUM_BUCKETS as u64 {
            let cell = Self::cell_of(b);
            let bucket = &mut self.buckets[cell];
            if self.sorted_bucket == Some(b) {
                // The current bucket is kept sorted (descending by key) so
                // it can be drained from the back.
                let key = e.key();
                let pos = bucket.partition_point(|x| x.key() > key);
                bucket.insert(pos, e);
            } else {
                bucket.push(e);
            }
            if bucket.len() > REBUILD_DENSE_BUCKET {
                self.dense_hint = true;
            }
            self.occ_set(cell);
            self.wheel_live += 1;
            false
        } else {
            self.far.push(FarEntry(e));
            true
        }
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error; in debug builds it panics,
    /// in release builds the event fires immediately (at `now`).
    ///
    /// # Panics
    /// Debug builds panic if `at < self.now()`.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.ops_since_rebuild += 1;

        // The slot must exist before the key so the entry can reference it;
        // `far` is patched once the tier is known.
        let slot = self.alloc_slot(false, payload);
        let gen = self.slots[slot as usize].gen;
        let entry = Entry { at, seq, slot };
        let went_far = self.insert_entry(entry);
        self.slots[slot as usize].far = went_far;
        self.live += 1;

        // Cached minimum: a new event can only improve it.
        if self.head.is_none_or(|h| (at, seq) < h.key()) {
            self.head = Some(entry);
        }

        self.maybe_rebuild();
        EventId { slot, gen }
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) -> EventId {
        self.schedule_at(self.now + delay, payload)
    }

    /// Schedules `payload` to fire at the current instant, after all events
    /// already queued for this instant.
    pub fn schedule_now(&mut self, payload: E) -> EventId {
        self.schedule_at(self.now, payload)
    }

    /// Cancels a previously scheduled event in O(1) (amortized: refreshing
    /// the cached minimum when the cancelled event *was* the minimum, and
    /// the occasional compaction sweep, both charge each key at most once
    /// over its lifetime).
    ///
    /// The payload is dropped immediately; only a 24-byte tombstone key
    /// remains until its bucket drains or compaction reclaims it.
    ///
    /// Returns `true` if the event had not yet fired (and is now guaranteed
    /// not to fire), `false` if it already fired or was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let far = match self.slots.get_mut(id.slot as usize) {
            Some(s) if s.gen == id.gen && s.state == SlotState::Live => {
                s.state = SlotState::Cancelled;
                s.payload = None;
                s.far
            }
            _ => return false,
        };
        self.live -= 1;
        if !far {
            self.wheel_live -= 1;
        }
        self.dead += 1;
        // Keep peek_time() exact: if we just killed the cached minimum,
        // find the new one. (A live slot index uniquely identifies the
        // event — stale generations returned above.)
        if self.head.is_some_and(|h| h.slot == id.slot) {
            self.refresh_head();
        }
        if self.dead >= COMPACT_MIN_DEAD && self.dead > self.live {
            self.compact();
        }
        true
    }

    /// Pops the next live event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when the queue is exhausted. Time never moves
    /// backwards.
    pub fn step(&mut self) -> Option<(SimTime, E)> {
        let head = self.head?;
        let loc = self.find_min().expect("live > 0 implies a minimum");
        let entry = match loc {
            MinLoc::Wheel(cell) => {
                let e = self.buckets[cell].pop().expect("wheel candidate at back");
                if self.buckets[cell].is_empty() {
                    self.occ_clear(cell);
                    self.sorted_bucket = None;
                }
                self.wheel_live -= 1;
                e
            }
            MinLoc::Far => self.far.pop().expect("far candidate at head").0,
        };
        debug_assert_eq!(entry.key(), head.key(), "cached minimum must match queue");
        debug_assert!(entry.at >= self.now);
        let payload = self.slots[entry.slot as usize]
            .payload
            .take()
            .expect("live event has a payload");
        self.release_slot(entry.slot);
        self.now = entry.at;
        self.base = entry.at.as_micros() >> self.shift;
        self.live -= 1;
        self.delivered += 1;
        self.refresh_head();
        Some((entry.at, payload))
    }

    /// Pops the next live event only if it fires at or before `deadline`.
    ///
    /// If the next event is later than `deadline`, the clock advances to
    /// `deadline` and `None` is returned. Useful for running a simulation
    /// for a fixed measurement window.
    pub fn step_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.head {
            Some(h) if h.at <= deadline => self.step(),
            _ => {
                self.now = self.now.max(deadline);
                // Advancing the clock past event-free buckets moves the
                // wheel window with it (cells behind the new base hold at
                // most tombstones, which drain harmlessly later).
                self.base = self.now.as_micros() >> self.shift;
                None
            }
        }
    }

    /// Timestamp of the next live event, if any. O(1): the minimum live
    /// key is cached and refreshed on every mutation that could change it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.head.map(|h| h.at)
    }

    /// Recomputes the cached minimum-live-event entry, and prefetches its
    /// payload line so the next [`Simulator::step`] finds it in cache. The
    /// runner-up candidate in the same bucket is prefetched too — one op of
    /// lead time is not always enough to cover a DRAM access plus the page
    /// walk behind it, two usually is.
    fn refresh_head(&mut self) {
        self.head = self.find_min().map(|loc| match loc {
            MinLoc::Wheel(cell) => {
                let bucket = &self.buckets[cell];
                if bucket.len() >= 2 {
                    self.prefetch_slot(bucket[bucket.len() - 2].slot);
                }
                *bucket.last().expect("wheel candidate")
            }
            MinLoc::Far => self.far.peek().expect("far candidate").0,
        });
        if let Some(h) = self.head {
            self.prefetch_slot(h.slot);
        }
    }

    /// Locates the minimum live event, mutating lazily along the way:
    /// sorts the bucket the search lands on, reaps tombstones it passes
    /// (wheel-bucket backs and overflow-heap heads), and keeps the
    /// occupancy bitmap exact. Returns `None` iff no live events remain.
    ///
    /// Amortized O(1): each key is sorted once, reaped once, and each
    /// bitmap probe is a handful of word operations.
    fn find_min(&mut self) -> Option<MinLoc> {
        // Reap cancelled overflow heads so the far candidate is live.
        // `dead == 0` means no tombstone exists anywhere — skip the slot
        // state reads entirely (they are random-access cache misses).
        while self.dead > 0 {
            match self.far.peek() {
                Some(FarEntry(e)) if self.slots[e.slot as usize].state == SlotState::Cancelled => {
                    let slot = e.slot;
                    self.far.pop();
                    self.release_slot(slot);
                    self.dead -= 1;
                }
                _ => break,
            }
        }
        let far_key = self.far.peek().map(|f| f.0.key());

        if self.wheel_live > 0 {
            let start = Self::cell_of(self.base);
            let mut cell = self
                .next_occupied(start)
                .expect("wheel_live > 0 implies an occupied cell");
            loop {
                // Reconstruct the absolute bucket for the sorted marker.
                // Cells holding only stale tombstones may be misattributed
                // (their true bucket already passed); they simply drain.
                let offset = (cell + NUM_BUCKETS - start) % NUM_BUCKETS;
                let b = self.base + offset as u64;
                if self.sorted_bucket != Some(b) {
                    self.buckets[cell].sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
                    self.sorted_bucket = Some(b);
                }
                // Drain tombstones off the back (skip the slot reads when
                // no tombstone exists anywhere).
                while self.dead > 0 {
                    match self.buckets[cell].last() {
                        Some(&e) if self.slots[e.slot as usize].state == SlotState::Cancelled => {
                            self.buckets[cell].pop();
                            self.release_slot(e.slot);
                            self.dead -= 1;
                        }
                        _ => break,
                    }
                }
                match self.buckets[cell].last() {
                    Some(e) => {
                        // Wheel minimum found; the overflow head may still
                        // be globally earlier (the wheel window has moved
                        // since it was filed as far-future).
                        return Some(match far_key {
                            Some(fk) if fk < e.key() => MinLoc::Far,
                            _ => MinLoc::Wheel(cell),
                        });
                    }
                    None => {
                        self.occ_clear(cell);
                        self.sorted_bucket = None;
                        cell = self
                            .next_occupied(cell)
                            .expect("wheel_live > 0 implies an occupied cell");
                    }
                }
            }
        }

        far_key.map(|_| MinLoc::Far)
    }

    /// Sweeps every tombstone out of the wheel and the overflow heap.
    /// Triggered when dead keys outnumber live events, so the O(keys) cost
    /// amortizes to O(1) per cancel.
    fn compact(&mut self) {
        let Self {
            buckets,
            slots,
            free,
            occ,
            far,
            ..
        } = self;
        for (cell, bucket) in buckets.iter_mut().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            bucket.retain(|e| {
                let s = &mut slots[e.slot as usize];
                if s.state == SlotState::Cancelled {
                    s.state = SlotState::Free;
                    s.gen = s.gen.wrapping_add(1);
                    free.push(e.slot);
                    false
                } else {
                    true
                }
            });
            if bucket.is_empty() {
                occ[cell >> 6] &= !(1u64 << (cell & 63));
            }
        }
        if !far.is_empty() {
            let mut keys = std::mem::take(far).into_vec();
            keys.retain(|FarEntry(e)| {
                let s = &mut slots[e.slot as usize];
                if s.state == SlotState::Cancelled {
                    s.state = SlotState::Free;
                    s.gen = s.gen.wrapping_add(1);
                    free.push(e.slot);
                    false
                } else {
                    true
                }
            });
            *far = BinaryHeap::from(keys);
        }
        self.dead = 0;
    }

    /// Rebuilds the wheel with a bucket width fitted to the observed span
    /// of pending events, when the current width clearly mismatches the
    /// workload. Deterministic: triggers depend only on the operation
    /// sequence, and keys are unchanged.
    fn maybe_rebuild(&mut self) {
        if self.ops_since_rebuild <= self.live {
            return; // thrash guard: at most one rebuild per queue turnover
        }
        let far_live = self.live - self.wheel_live;
        let overflow_dominates = far_live >= REBUILD_MIN_FAR && far_live > self.wheel_live;
        if !overflow_dominates && !self.dense_hint {
            return;
        }
        self.rebuild();
    }

    /// Collects every key, drops tombstones, picks a new bucket width so
    /// the live span covers at most half the wheel, and redistributes.
    fn rebuild(&mut self) {
        let mut entries: Vec<Entry> = Vec::with_capacity(self.live);
        let mut max_at = self.now;
        {
            let Self {
                buckets,
                slots,
                free,
                far,
                ..
            } = self;
            let mut keep = |e: Entry| {
                let s = &mut slots[e.slot as usize];
                if s.state == SlotState::Cancelled {
                    s.state = SlotState::Free;
                    s.gen = s.gen.wrapping_add(1);
                    free.push(e.slot);
                    false
                } else {
                    true
                }
            };
            for bucket in buckets.iter_mut() {
                for e in bucket.drain(..) {
                    if keep(e) {
                        entries.push(e);
                    }
                }
            }
            for FarEntry(e) in std::mem::take(far) {
                if keep(e) {
                    entries.push(e);
                }
            }
        }
        self.dead = 0;
        for e in &entries {
            max_at = max_at.max(e.at);
        }
        debug_assert_eq!(entries.len(), self.live);

        // Width such that [now, max_at] spans at most NUM_BUCKETS / 2
        // buckets (headroom for the span drifting forward).
        let span = (max_at - self.now).as_micros().max(1);
        let per_bucket = (span / (NUM_BUCKETS as u64 / 2)).max(1);
        self.shift = (64 - per_bucket.leading_zeros()).clamp(4, 40);
        self.base = self.now.as_micros() >> self.shift;
        self.occ.iter_mut().for_each(|w| *w = 0);
        self.sorted_bucket = None;
        self.wheel_live = 0;
        self.ops_since_rebuild = 0;
        self.dense_hint = false;
        for e in entries {
            let went_far = self.insert_entry(e);
            self.slots[e.slot as usize].far = went_far;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut sim = Simulator::new();
        sim.schedule_in(SimDuration::from_millis(3), "c");
        sim.schedule_in(SimDuration::from_millis(1), "a");
        sim.schedule_in(SimDuration::from_millis(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| sim.step()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(sim.now().as_millis(), 3);
    }

    #[test]
    fn fifo_tie_breaking_at_same_instant() {
        let mut sim = Simulator::new();
        let t = SimTime::from_millis(5);
        sim.schedule_at(t, 1);
        sim.schedule_at(t, 2);
        sim.schedule_at(t, 3);
        let order: Vec<_> = std::iter::from_fn(|| sim.step()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn schedule_now_runs_after_current_instant_events() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::ZERO, "first");
        let (_, e) = sim.step().unwrap();
        assert_eq!(e, "first");
        sim.schedule_now("second");
        sim.schedule_in(SimDuration::from_micros(1), "third");
        assert_eq!(sim.step().unwrap().1, "second");
        assert_eq!(sim.step().unwrap().1, "third");
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut sim = Simulator::new();
        let id = sim.schedule_in(SimDuration::from_millis(1), "x");
        sim.schedule_in(SimDuration::from_millis(2), "y");
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "double-cancel reports false");
        let order: Vec<_> = std::iter::from_fn(|| sim.step()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["y"]);
    }

    #[test]
    fn cancel_after_fire_reports_false() {
        let mut sim = Simulator::new();
        let id = sim.schedule_in(SimDuration::from_millis(1), "x");
        sim.step();
        assert!(!sim.cancel(id));
    }

    #[test]
    fn step_until_respects_deadline() {
        let mut sim = Simulator::new();
        sim.schedule_in(SimDuration::from_millis(10), "late");
        assert!(sim.step_until(SimTime::from_millis(5)).is_none());
        assert_eq!(sim.now(), SimTime::from_millis(5));
        assert_eq!(sim.step_until(SimTime::from_millis(20)).unwrap().1, "late");
    }

    #[test]
    fn pending_and_idle_track_cancellations() {
        let mut sim = Simulator::new();
        assert!(sim.is_idle());
        let a = sim.schedule_in(SimDuration::from_millis(1), 1);
        sim.schedule_in(SimDuration::from_millis(2), 2);
        assert_eq!(sim.pending(), 2);
        sim.cancel(a);
        assert_eq!(sim.pending(), 1);
        sim.step();
        assert!(sim.is_idle());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut sim = Simulator::new();
        let a = sim.schedule_in(SimDuration::from_millis(1), 1);
        sim.schedule_in(SimDuration::from_millis(4), 2);
        sim.cancel(a);
        assert_eq!(sim.peek_time(), Some(SimTime::from_millis(4)));
    }

    #[test]
    fn events_delivered_counts() {
        let mut sim = Simulator::new();
        for i in 0..5 {
            sim.schedule_in(SimDuration::from_millis(i), i);
        }
        while sim.step().is_some() {}
        assert_eq!(sim.events_delivered(), 5);
    }

    /// Regression (ISSUE 4, satellite 1): a tombstone consumed while the
    /// clock advances must not corrupt the bookkeeping that a later
    /// `cancel`/`step` relies on.
    #[test]
    fn cancel_step_until_step_interleaving() {
        let mut sim = Simulator::new();
        let a = sim.schedule_in(SimDuration::from_millis(1), "a");
        let b = sim.schedule_in(SimDuration::from_millis(2), "b");
        let c = sim.schedule_in(SimDuration::from_millis(3), "c");
        assert!(sim.cancel(a));
        assert!(sim.step_until(SimTime::from_millis(1)).is_none());
        assert!(!sim.cancel(a), "reaped tombstone must stay cancelled");
        assert_eq!(sim.pending(), 2);
        assert!(sim.cancel(b), "live event must be cancellable after reap");
        assert!(!sim.cancel(b));
        assert_eq!(sim.step().unwrap().1, "c");
        assert!(sim.step().is_none());
        assert!(!sim.cancel(c), "fired event reports false");
    }

    /// Regression: cancelling the head, then the new head, then stepping —
    /// the cached-minimum refresh in `cancel` must keep `peek_time` exact
    /// at every point.
    #[test]
    fn cancel_head_keeps_peek_exact() {
        let mut sim = Simulator::new();
        let a = sim.schedule_in(SimDuration::from_millis(1), "a");
        let b = sim.schedule_in(SimDuration::from_millis(2), "b");
        sim.schedule_in(SimDuration::from_millis(3), "c");
        assert_eq!(sim.peek_time(), Some(SimTime::from_millis(1)));
        assert!(sim.cancel(a));
        assert_eq!(sim.peek_time(), Some(SimTime::from_millis(2)));
        assert!(sim.cancel(b));
        assert_eq!(sim.peek_time(), Some(SimTime::from_millis(3)));
        assert_eq!(sim.step().unwrap().1, "c");
        assert_eq!(sim.peek_time(), None);
    }

    /// Regression (found by the reference-model property test): cancelling
    /// a *buried* event leaves a tombstone in its bucket; when a later
    /// `step` pops the live head, that tombstone can surface as the next
    /// candidate and `peek_time` must not report its (earlier) timestamp.
    #[test]
    fn step_past_buried_tombstone_keeps_peek_exact() {
        let mut sim = Simulator::new();
        sim.schedule_in(SimDuration::from_millis(1), "a");
        let x = sim.schedule_in(SimDuration::from_millis(2), "x");
        sim.schedule_in(SimDuration::from_millis(3), "b");
        assert!(sim.cancel(x));
        assert_eq!(sim.peek_time(), Some(SimTime::from_millis(1)));
        assert_eq!(sim.step().unwrap().1, "a");
        assert_eq!(sim.peek_time(), Some(SimTime::from_millis(3)));
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.step().unwrap().1, "b");
        assert!(sim.step().is_none());
    }

    /// A stale id whose slot has been recycled by a *new* event must not
    /// cancel the new occupant.
    #[test]
    fn stale_id_does_not_alias_recycled_slot() {
        let mut sim = Simulator::new();
        let a = sim.schedule_in(SimDuration::from_millis(1), "a");
        assert_eq!(sim.step().unwrap().1, "a");
        // `b` reuses a's slot (single-slot arena) at a bumped generation.
        let b = sim.schedule_in(SimDuration::from_millis(1), "b");
        assert!(!sim.cancel(a), "stale id must not cancel the new event");
        assert_eq!(sim.pending(), 1);
        assert!(sim.cancel(b));
        assert!(sim.step().is_none());
    }

    /// step_until must keep pending() and is_idle() exact for
    /// loop-termination checks even when only tombstones remain.
    #[test]
    fn step_until_deadline_with_only_tombstones() {
        let mut sim = Simulator::new();
        let a = sim.schedule_in(SimDuration::from_millis(5), 1);
        sim.cancel(a);
        assert!(sim.is_idle());
        assert!(sim.step_until(SimTime::from_millis(10)).is_none());
        assert_eq!(sim.now(), SimTime::from_millis(10));
        assert!(sim.is_idle());
        assert_eq!(sim.peek_time(), None);
    }

    /// Events beyond the wheel horizon (overflow heap) interleave
    /// correctly with near-future (wheel) events, including after the
    /// clock advances far enough that old "far" events are nearer than
    /// fresh wheel events.
    #[test]
    fn far_future_events_interleave_with_wheel() {
        let mut sim = Simulator::new();
        // ~2.1 s horizon at the initial width: 10 s is far-future.
        let far = sim.schedule_in(SimDuration::from_secs(10), "far");
        sim.schedule_in(SimDuration::from_millis(1), "near");
        assert_eq!(sim.peek_time(), Some(SimTime::from_millis(1)));
        assert_eq!(sim.step().unwrap().1, "near");
        // Advance to 9.999 s; the old far event is now just 1 ms away and
        // must beat a fresh wheel event 2 ms away.
        assert!(sim.step_until(SimTime::from_millis(9_999)).is_none());
        sim.schedule_in(SimDuration::from_millis(2), "late-near");
        assert_eq!(sim.peek_time(), Some(SimTime::from_micros(10_000_000)));
        assert_eq!(sim.step().unwrap().1, "far");
        assert_eq!(sim.step().unwrap().1, "late-near");
        let _ = far;
    }

    /// Cancelling a far-future event keeps every observable exact.
    #[test]
    fn cancel_far_future_event() {
        let mut sim = Simulator::new();
        let far = sim.schedule_in(SimDuration::from_secs(100), "far");
        sim.schedule_in(SimDuration::from_millis(1), "near");
        assert!(sim.cancel(far));
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.step().unwrap().1, "near");
        assert!(sim.step().is_none());
        assert!(sim.is_idle());
    }

    /// Tombstone compaction: mass-cancelling must not leave the queue in a
    /// state where live events are lost or misordered.
    #[test]
    fn mass_cancel_then_drain_survives_compaction() {
        let mut sim = Simulator::new();
        let mut ids = Vec::new();
        for i in 0..5_000u64 {
            ids.push((sim.schedule_in(SimDuration::from_micros(10 + i), i), i));
        }
        // Cancel every odd event — enough dead keys to trigger compaction.
        for &(id, i) in &ids {
            if i % 2 == 1 {
                assert!(sim.cancel(id));
            }
        }
        assert_eq!(sim.pending(), 2_500);
        let mut expect = 0u64;
        while let Some((_, v)) = sim.step() {
            assert_eq!(v, expect);
            expect += 2;
        }
        assert_eq!(expect, 5_000);
        assert!(sim.is_idle());
    }

    /// A workload whose span vastly exceeds the initial horizon triggers a
    /// width rebuild; ordering and exactness must be unaffected.
    #[test]
    fn wide_span_rebuild_preserves_order() {
        let mut sim = Simulator::new();
        // 4096 events spread over ~400 s — nearly all beyond the initial
        // 2.1 s horizon, so the overflow tier dominates and a rebuild
        // widens the buckets.
        for i in 0..4_096u64 {
            sim.schedule_in(SimDuration::from_micros(1 + i * 100_000), i);
        }
        let mut prev = SimTime::ZERO;
        let mut n = 0;
        while let Some((t, _)) = sim.step() {
            assert!(t >= prev);
            prev = t;
            n += 1;
        }
        assert_eq!(n, 4_096);
    }
}
