//! The event queue at the heart of the simulator.
//!
//! Events are ordered by simulated time with FIFO tie-breaking (insertion
//! order), which keeps runs fully deterministic: the serverless platform
//! built on top relies on stable ordering so that, e.g., a function-complete
//! event scheduled before a request-arrival event at the same instant is
//! always delivered first.
//!
//! # Cancellation
//!
//! Cancellation is O(1): every scheduled event owns a *slot* in a slab with
//! a generation counter, and [`Simulator::cancel`] flips the slot state
//! without touching the heap. Dead heap entries are reaped when they reach
//! the top of the heap (at pop time, or eagerly when a cancel kills the
//! current head), so the heap never accumulates an unbounded tombstone
//! backlog and no operation ever scans the heap linearly. This keeps
//! [`Simulator::pending`] and [`Simulator::peek_time`] exact *and* O(1):
//! the head of the heap is always a live event.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// Identifier of a scheduled event, usable to cancel it before it fires.
///
/// Returned by [`Simulator::schedule_at`] / [`Simulator::schedule_in`].
/// Internally packs a slab slot index and a generation counter, so ids of
/// events that already fired (whose slot has been recycled) are recognized
/// as stale in O(1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId {
    slot: u32,
    gen: u32,
}

/// Lifecycle of a slab slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// Scheduled and not cancelled; the heap holds a matching entry.
    Live,
    /// Cancelled but the heap entry has not yet been reaped.
    Cancelled,
    /// No event owns this slot (fired, or reaped after cancel).
    Free,
}

#[derive(Debug)]
struct Slot {
    gen: u32,
    state: SlotState,
}

#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    slot: u32,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first,
        // with the lowest sequence number breaking ties (FIFO).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event simulator: virtual clock plus pending-event queue.
///
/// The simulator is intentionally passive — it owns time and the queue, and
/// the caller drives the loop. This avoids callback-trait gymnastics and
/// lets the platform layer keep full mutable access to its own state while
/// handling each event:
///
/// ```
/// use specfaas_sim::{Simulator, SimDuration};
///
/// enum Ev { Tick }
///
/// let mut sim = Simulator::new();
/// sim.schedule_in(SimDuration::from_millis(1), Ev::Tick);
/// let mut ticks = 0;
/// while let Some((_, Ev::Tick)) = sim.step() {
///     ticks += 1;
///     if ticks < 3 {
///         sim.schedule_in(SimDuration::from_millis(1), Ev::Tick);
///     }
/// }
/// assert_eq!(ticks, 3);
/// assert_eq!(sim.now().as_millis(), 3);
/// ```
#[derive(Debug)]
pub struct Simulator<E> {
    now: SimTime,
    queue: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
    delivered: u64,
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulator<E> {
    /// Creates an empty simulator with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Simulator {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            next_seq: 0,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            delivered: 0,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far via [`Simulator::step`].
    pub fn events_delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of live (scheduled, not cancelled, not yet fired) events.
    pub fn pending(&self) -> usize {
        self.live
    }

    /// True when no live events remain.
    pub fn is_idle(&self) -> bool {
        self.live == 0
    }

    /// Allocates a slab slot for a freshly scheduled event.
    fn alloc_slot(&mut self) -> u32 {
        if let Some(idx) = self.free.pop() {
            let s = &mut self.slots[idx as usize];
            debug_assert_eq!(s.state, SlotState::Free);
            s.state = SlotState::Live;
            idx
        } else {
            let idx = self.slots.len() as u32;
            self.slots.push(Slot {
                gen: 0,
                state: SlotState::Live,
            });
            idx
        }
    }

    /// Returns a slot to the free list, bumping its generation so stale
    /// [`EventId`]s can never alias the next occupant.
    fn release_slot(&mut self, idx: u32) {
        let s = &mut self.slots[idx as usize];
        s.state = SlotState::Free;
        s.gen = s.gen.wrapping_add(1);
        self.free.push(idx);
    }

    /// Pops dead entries off the heap until the head is live (or the heap
    /// is empty). Amortized O(log n): each dead entry is popped exactly
    /// once over its lifetime.
    fn reap_head(&mut self) {
        while let Some(head) = self.queue.peek() {
            if self.slots[head.slot as usize].state == SlotState::Cancelled {
                let slot = head.slot;
                self.queue.pop();
                self.release_slot(slot);
            } else {
                return;
            }
        }
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error; in debug builds it panics,
    /// in release builds the event fires immediately (at `now`).
    ///
    /// # Panics
    /// Debug builds panic if `at < self.now()`.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = self.alloc_slot();
        let gen = self.slots[slot as usize].gen;
        self.queue.push(Scheduled {
            at,
            seq,
            slot,
            payload,
        });
        self.live += 1;
        EventId { slot, gen }
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) -> EventId {
        self.schedule_at(self.now + delay, payload)
    }

    /// Schedules `payload` to fire at the current instant, after all events
    /// already queued for this instant.
    pub fn schedule_now(&mut self, payload: E) -> EventId {
        self.schedule_at(self.now, payload)
    }

    /// Cancels a previously scheduled event in O(1) (amortized O(log n)
    /// when the cancelled event was the queue head, which must be reaped
    /// to keep [`Simulator::peek_time`] exact).
    ///
    /// Returns `true` if the event had not yet fired (and is now guaranteed
    /// not to fire), `false` if it already fired or was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.slots.get_mut(id.slot as usize) {
            Some(s) if s.gen == id.gen && s.state == SlotState::Live => {
                s.state = SlotState::Cancelled;
                self.live -= 1;
                // Keep the head-is-live invariant so peek_time()/step_until
                // never see a dead head.
                self.reap_head();
                true
            }
            _ => false,
        }
    }

    /// Pops the next live event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when the queue is exhausted. Time never moves
    /// backwards.
    pub fn step(&mut self) -> Option<(SimTime, E)> {
        while let Some(ev) = self.queue.pop() {
            let state = self.slots[ev.slot as usize].state;
            self.release_slot(ev.slot);
            if state == SlotState::Cancelled {
                continue;
            }
            debug_assert_eq!(state, SlotState::Live);
            debug_assert!(ev.at >= self.now);
            self.now = ev.at;
            self.live -= 1;
            self.delivered += 1;
            // Popping the live head can surface a tombstone as the new
            // head; reap it so peek_time() stays exact.
            self.reap_head();
            return Some((ev.at, ev.payload));
        }
        None
    }

    /// Pops the next live event only if it fires at or before `deadline`.
    ///
    /// If the next event is later than `deadline`, the clock advances to
    /// `deadline` and `None` is returned. Useful for running a simulation
    /// for a fixed measurement window.
    pub fn step_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        self.reap_head();
        match self.queue.peek() {
            Some(head) if head.at <= deadline => self.step(),
            _ => {
                self.now = self.now.max(deadline);
                None
            }
        }
    }

    /// Timestamp of the next live event, if any. O(1): the queue head is
    /// always live (dead heads are reaped by `cancel`/`step`).
    pub fn peek_time(&self) -> Option<SimTime> {
        debug_assert!(self
            .queue
            .peek()
            .map(|h| self.slots[h.slot as usize].state == SlotState::Live)
            .unwrap_or(true));
        self.queue.peek().map(|s| s.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut sim = Simulator::new();
        sim.schedule_in(SimDuration::from_millis(3), "c");
        sim.schedule_in(SimDuration::from_millis(1), "a");
        sim.schedule_in(SimDuration::from_millis(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| sim.step()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(sim.now().as_millis(), 3);
    }

    #[test]
    fn fifo_tie_breaking_at_same_instant() {
        let mut sim = Simulator::new();
        let t = SimTime::from_millis(5);
        sim.schedule_at(t, 1);
        sim.schedule_at(t, 2);
        sim.schedule_at(t, 3);
        let order: Vec<_> = std::iter::from_fn(|| sim.step()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn schedule_now_runs_after_current_instant_events() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::ZERO, "first");
        let (_, e) = sim.step().unwrap();
        assert_eq!(e, "first");
        sim.schedule_now("second");
        sim.schedule_in(SimDuration::from_micros(1), "third");
        assert_eq!(sim.step().unwrap().1, "second");
        assert_eq!(sim.step().unwrap().1, "third");
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut sim = Simulator::new();
        let id = sim.schedule_in(SimDuration::from_millis(1), "x");
        sim.schedule_in(SimDuration::from_millis(2), "y");
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "double-cancel reports false");
        let order: Vec<_> = std::iter::from_fn(|| sim.step()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["y"]);
    }

    #[test]
    fn cancel_after_fire_reports_false() {
        let mut sim = Simulator::new();
        let id = sim.schedule_in(SimDuration::from_millis(1), "x");
        sim.step();
        assert!(!sim.cancel(id));
    }

    #[test]
    fn step_until_respects_deadline() {
        let mut sim = Simulator::new();
        sim.schedule_in(SimDuration::from_millis(10), "late");
        assert!(sim.step_until(SimTime::from_millis(5)).is_none());
        assert_eq!(sim.now(), SimTime::from_millis(5));
        assert_eq!(sim.step_until(SimTime::from_millis(20)).unwrap().1, "late");
    }

    #[test]
    fn pending_and_idle_track_cancellations() {
        let mut sim = Simulator::new();
        assert!(sim.is_idle());
        let a = sim.schedule_in(SimDuration::from_millis(1), 1);
        sim.schedule_in(SimDuration::from_millis(2), 2);
        assert_eq!(sim.pending(), 2);
        sim.cancel(a);
        assert_eq!(sim.pending(), 1);
        sim.step();
        assert!(sim.is_idle());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut sim = Simulator::new();
        let a = sim.schedule_in(SimDuration::from_millis(1), 1);
        sim.schedule_in(SimDuration::from_millis(4), 2);
        sim.cancel(a);
        assert_eq!(sim.peek_time(), Some(SimTime::from_millis(4)));
    }

    #[test]
    fn events_delivered_counts() {
        let mut sim = Simulator::new();
        for i in 0..5 {
            sim.schedule_in(SimDuration::from_millis(i), i);
        }
        while sim.step().is_some() {}
        assert_eq!(sim.events_delivered(), 5);
    }

    /// Regression (ISSUE 4, satellite 1): a tombstone consumed by the
    /// `step_until` peek loop must not corrupt the bookkeeping that a later
    /// `cancel`/`step` relies on. The old lazy-HashSet implementation
    /// removed the cancelled id inside the peek loop, so interleaving
    /// cancel → step_until → cancel/step could mis-report liveness.
    #[test]
    fn cancel_step_until_step_interleaving() {
        let mut sim = Simulator::new();
        let a = sim.schedule_in(SimDuration::from_millis(1), "a");
        let b = sim.schedule_in(SimDuration::from_millis(2), "b");
        let c = sim.schedule_in(SimDuration::from_millis(3), "c");
        assert!(sim.cancel(a));
        // step_until with a deadline before any live event: reaps `a`'s
        // heap entry while returning None.
        assert!(sim.step_until(SimTime::from_millis(1)).is_none());
        // `a` is gone for good: cancelling again must still report false,
        // and stepping must never deliver it.
        assert!(!sim.cancel(a), "reaped tombstone must stay cancelled");
        assert_eq!(sim.pending(), 2);
        // `b` is still live after the reap and cancellable exactly once.
        assert!(sim.cancel(b), "live event must be cancellable after reap");
        assert!(!sim.cancel(b));
        assert_eq!(sim.step().unwrap().1, "c");
        assert!(sim.step().is_none());
        assert!(!sim.cancel(c), "fired event reports false");
    }

    /// Regression: cancelling the head, then the new head, then stepping —
    /// the eager head reap in `cancel` must keep `peek_time` exact at
    /// every point.
    #[test]
    fn cancel_head_keeps_peek_exact() {
        let mut sim = Simulator::new();
        let a = sim.schedule_in(SimDuration::from_millis(1), "a");
        let b = sim.schedule_in(SimDuration::from_millis(2), "b");
        sim.schedule_in(SimDuration::from_millis(3), "c");
        assert_eq!(sim.peek_time(), Some(SimTime::from_millis(1)));
        assert!(sim.cancel(a));
        assert_eq!(sim.peek_time(), Some(SimTime::from_millis(2)));
        assert!(sim.cancel(b));
        assert_eq!(sim.peek_time(), Some(SimTime::from_millis(3)));
        assert_eq!(sim.step().unwrap().1, "c");
        assert_eq!(sim.peek_time(), None);
    }

    /// Regression (found by the reference-model property test): cancelling
    /// a *buried* event leaves a tombstone deep in the heap; when a later
    /// `step` pops the live head, that tombstone can surface as the new
    /// head and `peek_time` must not report its (earlier) timestamp.
    #[test]
    fn step_past_buried_tombstone_keeps_peek_exact() {
        let mut sim = Simulator::new();
        sim.schedule_in(SimDuration::from_millis(1), "a");
        let x = sim.schedule_in(SimDuration::from_millis(2), "x");
        sim.schedule_in(SimDuration::from_millis(3), "b");
        // Head "a" is live, so this cancel reaps nothing.
        assert!(sim.cancel(x));
        assert_eq!(sim.peek_time(), Some(SimTime::from_millis(1)));
        // Popping "a" surfaces the tombstone; step must reap it.
        assert_eq!(sim.step().unwrap().1, "a");
        assert_eq!(sim.peek_time(), Some(SimTime::from_millis(3)));
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.step().unwrap().1, "b");
        assert!(sim.step().is_none());
    }

    /// A stale id whose slot has been recycled by a *new* event must not
    /// cancel the new occupant.
    #[test]
    fn stale_id_does_not_alias_recycled_slot() {
        let mut sim = Simulator::new();
        let a = sim.schedule_in(SimDuration::from_millis(1), "a");
        assert_eq!(sim.step().unwrap().1, "a");
        // `b` reuses a's slot (single-slot slab) at a bumped generation.
        let b = sim.schedule_in(SimDuration::from_millis(1), "b");
        assert!(!sim.cancel(a), "stale id must not cancel the new event");
        assert_eq!(sim.pending(), 1);
        assert!(sim.cancel(b));
        assert!(sim.step().is_none());
    }

    /// step_until must reap tombstones even when it hits the deadline, so
    /// pending() and is_idle() stay exact for loop-termination checks.
    #[test]
    fn step_until_deadline_with_only_tombstones() {
        let mut sim = Simulator::new();
        let a = sim.schedule_in(SimDuration::from_millis(5), 1);
        sim.cancel(a);
        assert!(sim.is_idle());
        assert!(sim.step_until(SimTime::from_millis(10)).is_none());
        assert_eq!(sim.now(), SimTime::from_millis(10));
        assert!(sim.is_idle());
        assert_eq!(sim.peek_time(), None);
    }
}
