//! The event queue at the heart of the simulator.
//!
//! Events are ordered by simulated time with FIFO tie-breaking (insertion
//! order), which keeps runs fully deterministic: the serverless platform
//! built on top relies on stable ordering so that, e.g., a function-complete
//! event scheduled before a request-arrival event at the same instant is
//! always delivered first.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// Identifier of a scheduled event, usable to cancel it before it fires.
///
/// Returned by [`Simulator::schedule_at`] / [`Simulator::schedule_in`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first,
        // with the lowest sequence number breaking ties (FIFO).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event simulator: virtual clock plus pending-event queue.
///
/// The simulator is intentionally passive — it owns time and the queue, and
/// the caller drives the loop. This avoids callback-trait gymnastics and
/// lets the platform layer keep full mutable access to its own state while
/// handling each event:
///
/// ```
/// use specfaas_sim::{Simulator, SimDuration};
///
/// enum Ev { Tick }
///
/// let mut sim = Simulator::new();
/// sim.schedule_in(SimDuration::from_millis(1), Ev::Tick);
/// let mut ticks = 0;
/// while let Some((_, Ev::Tick)) = sim.step() {
///     ticks += 1;
///     if ticks < 3 {
///         sim.schedule_in(SimDuration::from_millis(1), Ev::Tick);
///     }
/// }
/// assert_eq!(ticks, 3);
/// assert_eq!(sim.now().as_millis(), 3);
/// ```
#[derive(Debug)]
pub struct Simulator<E> {
    now: SimTime,
    queue: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    cancelled: std::collections::HashSet<u64>,
    delivered: u64,
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulator<E> {
    /// Creates an empty simulator with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Simulator {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            next_seq: 0,
            cancelled: std::collections::HashSet::new(),
            delivered: 0,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far via [`Simulator::step`].
    pub fn events_delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of events still pending (including cancelled-but-unreaped).
    pub fn pending(&self) -> usize {
        self.queue.len() - self.cancelled.len()
    }

    /// True when no live events remain.
    pub fn is_idle(&self) -> bool {
        self.pending() == 0
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error; in debug builds it panics,
    /// in release builds the event fires immediately (at `now`).
    ///
    /// # Panics
    /// Debug builds panic if `at < self.now()`.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled { at, seq, payload });
        EventId(seq)
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) -> EventId {
        self.schedule_at(self.now + delay, payload)
    }

    /// Schedules `payload` to fire at the current instant, after all events
    /// already queued for this instant.
    pub fn schedule_now(&mut self, payload: E) -> EventId {
        self.schedule_at(self.now, payload)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired (and is now guaranteed
    /// not to fire), `false` if it already fired or was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        // An event that already fired is not in the queue; inserting its id
        // would leak, so check via the fired-watermark heuristic: we cannot
        // know cheaply, so track precisely by only accepting ids still queued.
        // The queue is a heap, so do a linear check only in debug; in release
        // we accept the insert and reap lazily.
        if self.cancelled.contains(&id.0) {
            return false;
        }
        let live = self.queue.iter().any(|s| s.seq == id.0);
        if live {
            self.cancelled.insert(id.0);
        }
        live
    }

    /// Pops the next live event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when the queue is exhausted. Time never moves
    /// backwards.
    pub fn step(&mut self) -> Option<(SimTime, E)> {
        while let Some(ev) = self.queue.pop() {
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            debug_assert!(ev.at >= self.now);
            self.now = ev.at;
            self.delivered += 1;
            return Some((ev.at, ev.payload));
        }
        None
    }

    /// Pops the next live event only if it fires at or before `deadline`.
    ///
    /// If the next event is later than `deadline`, the clock advances to
    /// `deadline` and `None` is returned. Useful for running a simulation
    /// for a fixed measurement window.
    pub fn step_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        // Peek past cancelled entries.
        while let Some(head) = self.queue.peek() {
            if self.cancelled.contains(&head.seq) {
                let seq = head.seq;
                self.queue.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            if head.at > deadline {
                self.now = self.now.max(deadline);
                return None;
            }
            return self.step();
        }
        self.now = self.now.max(deadline);
        None
    }

    /// Timestamp of the next live event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue
            .iter()
            .filter(|s| !self.cancelled.contains(&s.seq))
            .map(|s| s.at)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut sim = Simulator::new();
        sim.schedule_in(SimDuration::from_millis(3), "c");
        sim.schedule_in(SimDuration::from_millis(1), "a");
        sim.schedule_in(SimDuration::from_millis(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| sim.step()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(sim.now().as_millis(), 3);
    }

    #[test]
    fn fifo_tie_breaking_at_same_instant() {
        let mut sim = Simulator::new();
        let t = SimTime::from_millis(5);
        sim.schedule_at(t, 1);
        sim.schedule_at(t, 2);
        sim.schedule_at(t, 3);
        let order: Vec<_> = std::iter::from_fn(|| sim.step()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn schedule_now_runs_after_current_instant_events() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::ZERO, "first");
        let (_, e) = sim.step().unwrap();
        assert_eq!(e, "first");
        sim.schedule_now("second");
        sim.schedule_in(SimDuration::from_micros(1), "third");
        assert_eq!(sim.step().unwrap().1, "second");
        assert_eq!(sim.step().unwrap().1, "third");
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut sim = Simulator::new();
        let id = sim.schedule_in(SimDuration::from_millis(1), "x");
        sim.schedule_in(SimDuration::from_millis(2), "y");
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "double-cancel reports false");
        let order: Vec<_> = std::iter::from_fn(|| sim.step()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["y"]);
    }

    #[test]
    fn cancel_after_fire_reports_false() {
        let mut sim = Simulator::new();
        let id = sim.schedule_in(SimDuration::from_millis(1), "x");
        sim.step();
        assert!(!sim.cancel(id));
    }

    #[test]
    fn step_until_respects_deadline() {
        let mut sim = Simulator::new();
        sim.schedule_in(SimDuration::from_millis(10), "late");
        assert!(sim.step_until(SimTime::from_millis(5)).is_none());
        assert_eq!(sim.now(), SimTime::from_millis(5));
        assert_eq!(sim.step_until(SimTime::from_millis(20)).unwrap().1, "late");
    }

    #[test]
    fn pending_and_idle_track_cancellations() {
        let mut sim = Simulator::new();
        assert!(sim.is_idle());
        let a = sim.schedule_in(SimDuration::from_millis(1), 1);
        sim.schedule_in(SimDuration::from_millis(2), 2);
        assert_eq!(sim.pending(), 2);
        sim.cancel(a);
        assert_eq!(sim.pending(), 1);
        sim.step();
        assert!(sim.is_idle());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut sim = Simulator::new();
        let a = sim.schedule_in(SimDuration::from_millis(1), 1);
        sim.schedule_in(SimDuration::from_millis(4), 2);
        sim.cancel(a);
        assert_eq!(sim.peek_time(), Some(SimTime::from_millis(4)));
    }

    #[test]
    fn events_delivered_counts() {
        let mut sim = Simulator::new();
        for i in 0..5 {
            sim.schedule_in(SimDuration::from_millis(i), i);
        }
        while sim.step().is_some() {}
        assert_eq!(sim.events_delivered(), 5);
    }
}
