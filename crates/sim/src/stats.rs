//! Statistics collection: running moments, percentile histograms, CDFs and
//! time-weighted utilization.
//!
//! The paper's evaluation reports average response times and speedups
//! (Fig. 11/12/14), P99 tail latency (Fig. 13), effective throughput under a
//! QoS bound (Table III), CPU-utilization CDFs (Fig. 4), and normalized CPU
//! utilization (Table IV). This module supplies each of those measurements.

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// Online mean / variance / min / max accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// use specfaas_sim::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds a duration observation in milliseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_millis_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n-1 denominator), or 0 with fewer than 2 samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact-percentile latency recorder.
///
/// Stores every sample (experiments record at most a few hundred thousand
/// response times, which is cheap) and computes percentiles by sorting on
/// demand with linear interpolation between the two closest ranks — the
/// way P99 tail latency (paper Fig. 13) is reported.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencyRecorder {
    samples_ms: Vec<f64>,
    sorted: bool,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        LatencyRecorder {
            samples_ms: Vec::new(),
            sorted: true,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples_ms.push(d.as_millis_f64());
        self.sorted = false;
    }

    /// Records a raw millisecond value.
    pub fn record_ms(&mut self, ms: f64) {
        self.samples_ms.push(ms);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples_ms.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_ms.is_empty()
    }

    /// Mean latency in milliseconds, or 0 if empty.
    pub fn mean_ms(&self) -> f64 {
        if self.samples_ms.is_empty() {
            return 0.0;
        }
        self.samples_ms.iter().sum::<f64>() / self.samples_ms.len() as f64
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples_ms
                .sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
            self.sorted = true;
        }
    }

    /// The `p`-th percentile in milliseconds (`p` in `[0, 100]`), using
    /// linear interpolation between closest ranks. Returns 0 if empty.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile_ms(&mut self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
        self.ensure_sorted();
        let n = self.samples_ms.len();
        if n == 0 {
            return 0.0;
        }
        if n == 1 {
            return self.samples_ms[0];
        }
        let rank = p / 100.0 * (n - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.samples_ms[lo] * (1.0 - frac) + self.samples_ms[hi] * frac
    }

    /// Convenience: P50 in milliseconds.
    pub fn p50_ms(&mut self) -> f64 {
        self.percentile_ms(50.0)
    }

    /// Convenience: P99 in milliseconds.
    pub fn p99_ms(&mut self) -> f64 {
        self.percentile_ms(99.0)
    }

    /// Merges another recorder's samples into this one.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples_ms.extend_from_slice(&other.samples_ms);
        self.sorted = false;
    }
}

/// An empirical CDF over arbitrary values, reported as (value, fraction ≤)
/// points — the form used by the paper's Fig. 4 utilization CDFs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Cdf {
    values: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from raw samples.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
        Cdf { values: samples }
    }

    /// Number of underlying samples.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Fraction of samples ≤ `x`.
    pub fn fraction_at(&self, x: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let idx = self.values.partition_point(|v| *v <= x);
        idx as f64 / self.values.len() as f64
    }

    /// The value below which `q` (in `[0,1]`) of the mass lies.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]` or the CDF is empty.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        assert!(!self.values.is_empty(), "quantile of empty CDF");
        let idx =
            ((q * (self.values.len() - 1) as f64).round() as usize).min(self.values.len() - 1);
        self.values[idx]
    }

    /// Evaluates the CDF at `n` evenly spaced points across `[lo, hi]`,
    /// producing the series plotted in Fig. 4.
    pub fn series(&self, lo: f64, hi: f64, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2 && hi > lo, "series needs n>=2 and hi>lo");
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.fraction_at(x))
            })
            .collect()
    }
}

/// Tracks the busy fraction of a pool of units (e.g. CPU cores) over
/// simulated time, by integrating `busy_units × dt`.
///
/// Produces the normalized CPU-utilization numbers of paper Table IV and the
/// per-node utilization samples behind Fig. 4.
#[derive(Debug, Clone)]
pub struct UtilizationTracker {
    capacity: u64,
    busy: u64,
    /// Windowed-integral clock. [`UtilizationTracker::reset_window`] may
    /// legitimately set this *ahead* of simulated time (excluding a
    /// warm-up transient before it elapses), so it says nothing about
    /// transition ordering.
    last_change: SimTime,
    busy_unit_time: f64, // unit-microseconds of busy time (window-relative)
    /// Total-integral clock: advanced only by transitions and total
    /// queries, never reset, so it orders real busy/idle transitions.
    last_total: SimTime,
    busy_micros_total: u64, // exact unit-microseconds of busy time, never reset
    window_start: SimTime,
    time_anomalies: u64,
}

impl UtilizationTracker {
    /// Creates a tracker for `capacity` units, all idle, at time zero.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        UtilizationTracker {
            capacity,
            busy: 0,
            last_change: SimTime::ZERO,
            busy_unit_time: 0.0,
            last_total: SimTime::ZERO,
            busy_micros_total: 0,
            window_start: SimTime::ZERO,
            time_anomalies: 0,
        }
    }

    fn integrate_window(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_change).as_micros();
        self.busy_unit_time += dt as f64 * self.busy as f64;
        self.last_change = self.last_change.max(now);
    }

    fn integrate_total(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_total).as_micros();
        self.busy_micros_total += dt * self.busy;
        self.last_total = self.last_total.max(now);
    }

    /// Marks `n` more units busy at time `now`.
    ///
    /// Busy/idle transitions must carry monotone timestamps: a timestamp
    /// earlier than the last transition would silently under-integrate
    /// busy time (the elapsed span clamps to zero). That is a caller bug,
    /// so it panics in debug builds and is counted as a
    /// [`UtilizationTracker::time_anomalies`] in release builds.
    ///
    /// # Panics
    /// Panics if this would exceed capacity, or (debug builds) if `now`
    /// precedes the previous transition.
    pub fn acquire(&mut self, now: SimTime, n: u64) {
        self.check_monotone(now);
        self.integrate_window(now);
        self.integrate_total(now);
        assert!(
            self.busy + n <= self.capacity,
            "utilization acquire beyond capacity"
        );
        self.busy += n;
    }

    /// Marks `n` units idle at time `now`. The same timestamp-monotonicity
    /// contract as [`UtilizationTracker::acquire`] applies.
    ///
    /// # Panics
    /// Panics if more units are released than are busy, or (debug builds)
    /// if `now` precedes the previous transition.
    pub fn release(&mut self, now: SimTime, n: u64) {
        self.check_monotone(now);
        self.integrate_window(now);
        self.integrate_total(now);
        assert!(self.busy >= n, "utilization release below zero");
        self.busy -= n;
    }

    fn check_monotone(&mut self, now: SimTime) {
        if now < self.last_total {
            debug_assert!(
                false,
                "utilization time went backwards: transition at {now} after {}",
                self.last_total
            );
            self.time_anomalies += 1;
        }
    }

    /// Number of busy/idle transitions that carried a timestamp earlier
    /// than their predecessor (always 0 in debug builds, which panic
    /// instead). Non-zero means busy time was under-integrated.
    pub fn time_anomalies(&self) -> u64 {
        self.time_anomalies
    }

    /// Currently busy units.
    pub fn busy(&self) -> u64 {
        self.busy
    }

    /// Exact integrated busy time (unit-microseconds) since construction,
    /// unaffected by window resets — the reference for the flight
    /// recorder's core-time conservation invariant.
    pub fn busy_core_time_total(&mut self, now: SimTime) -> SimDuration {
        self.integrate_total(now);
        SimDuration::from_micros(self.busy_micros_total)
    }

    /// Average utilization in `[0, 1]` over `[window_start, now]`.
    pub fn utilization(&mut self, now: SimTime) -> f64 {
        self.integrate_window(now);
        let span = now.saturating_since(self.window_start).as_micros() as f64;
        if span == 0.0 {
            return 0.0;
        }
        self.busy_unit_time / (span * self.capacity as f64)
    }

    /// Resets the measurement window to start at `now` (used to discard
    /// warm-up transients before measuring). `now` may lie in the future:
    /// the engines pre-announce the end of the warm-up phase, and busy
    /// time before that instant is then excluded from the window. Only the
    /// windowed integral is affected; the exact total keeps integrating
    /// continuously.
    pub fn reset_window(&mut self, now: SimTime) {
        self.integrate_window(now);
        self.busy_unit_time = 0.0;
        self.window_start = now;
        self.last_change = now;
    }
}

/// Counts discrete occurrences (requests completed, squashes, hits/misses)
/// and derives rates over the simulated window.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Events per second across `window`.
    pub fn rate_per_sec(&self, window: SimDuration) -> f64 {
        let secs = window.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.0 as f64 / secs
    }
}

/// Ratio helper for hit-rate style metrics (branch predictor, memoization).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct HitRate {
    hits: u64,
    total: u64,
}

impl HitRate {
    /// Creates an empty hit-rate tracker.
    pub fn new() -> Self {
        HitRate::default()
    }

    /// Records one trial.
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Number of hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of trials.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Hit fraction in `[0, 1]`, or 0 with no trials.
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }

    /// Merges another tracker.
    pub fn merge(&mut self, other: HitRate) {
        self.hits += other.hits;
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic_moments() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.record(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.count(), all.count());
    }

    /// Property test over seeded random partitions: merging per-chunk
    /// accumulators must agree with recording every sample into one
    /// accumulator, for any chunking. `OnlineStats` moments match to
    /// floating-point tolerance; `LatencyRecorder` holds the same sample
    /// multiset, so its percentiles match exactly.
    #[test]
    fn merge_equals_recording_together_for_random_partitions() {
        use crate::rng::SimRng;

        for seed in 0..20u64 {
            let mut rng = SimRng::seed(0x57a7 ^ seed);
            let n = rng.uniform_range(1, 400) as usize;
            let xs: Vec<f64> = (0..n).map(|_| rng.uniform_f64() * 1e4).collect();

            let mut together_stats = OnlineStats::new();
            let mut together_lat = LatencyRecorder::new();
            for &x in &xs {
                together_stats.record(x);
                together_lat.record_ms(x);
            }

            // Split into a random number of contiguous chunks, record each
            // chunk into its own accumulator, then merge them all.
            let chunks = rng.uniform_range(1, 8) as usize;
            let mut merged_stats = OnlineStats::new();
            let mut merged_lat = LatencyRecorder::new();
            for c in xs.chunks(xs.len().div_ceil(chunks)) {
                let mut s = OnlineStats::new();
                let mut l = LatencyRecorder::new();
                for &x in c {
                    s.record(x);
                    l.record_ms(x);
                }
                merged_stats.merge(&s);
                merged_lat.merge(&l);
            }

            assert_eq!(merged_stats.count(), together_stats.count());
            assert!((merged_stats.mean() - together_stats.mean()).abs() < 1e-7);
            assert!((merged_stats.variance() - together_stats.variance()).abs() < 1e-6);
            assert_eq!(merged_stats.min(), together_stats.min());
            assert_eq!(merged_stats.max(), together_stats.max());

            assert_eq!(merged_lat.count(), together_lat.count());
            for p in [0.0, 25.0, 50.0, 90.0, 99.0, 100.0] {
                assert_eq!(
                    merged_lat.percentile_ms(p),
                    together_lat.percentile_ms(p),
                    "seed {seed}, percentile {p}"
                );
            }
        }
    }

    #[test]
    fn latency_percentiles() {
        let mut r = LatencyRecorder::new();
        for i in 1..=100 {
            r.record(SimDuration::from_millis(i));
        }
        assert!((r.p50_ms() - 50.5).abs() < 1e-9);
        assert!((r.p99_ms() - 99.01).abs() < 0.02);
        assert_eq!(r.percentile_ms(0.0), 1.0);
        assert_eq!(r.percentile_ms(100.0), 100.0);
    }

    #[test]
    fn latency_empty_and_single() {
        let mut r = LatencyRecorder::new();
        assert_eq!(r.p99_ms(), 0.0);
        r.record_ms(42.0);
        assert_eq!(r.p50_ms(), 42.0);
        assert_eq!(r.mean_ms(), 42.0);
    }

    #[test]
    fn cdf_fraction_and_quantile() {
        let cdf = Cdf::from_samples(vec![0.1, 0.2, 0.3, 0.4, 0.5]);
        assert_eq!(cdf.fraction_at(0.3), 0.6);
        assert_eq!(cdf.fraction_at(0.05), 0.0);
        assert_eq!(cdf.fraction_at(1.0), 1.0);
        assert_eq!(cdf.quantile(0.0), 0.1);
        assert_eq!(cdf.quantile(1.0), 0.5);
    }

    #[test]
    fn cdf_series_is_monotone() {
        let cdf = Cdf::from_samples((0..1000).map(|i| i as f64 / 1000.0).collect());
        let series = cdf.series(0.0, 1.0, 11);
        assert_eq!(series.len(), 11);
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn utilization_integrates_busy_time() {
        let mut u = UtilizationTracker::new(4);
        u.acquire(SimTime::from_millis(0), 2);
        u.release(SimTime::from_millis(10), 2);
        // 2 of 4 cores busy for 10ms out of 20ms window = 25%.
        assert!((u.utilization(SimTime::from_millis(20)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn utilization_window_reset() {
        let mut u = UtilizationTracker::new(1);
        u.acquire(SimTime::from_millis(0), 1);
        u.reset_window(SimTime::from_millis(50));
        // Still busy after reset: full utilization over the new window.
        assert!((u.utilization(SimTime::from_millis(60)) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn utilization_over_acquire_panics() {
        let mut u = UtilizationTracker::new(1);
        u.acquire(SimTime::ZERO, 2);
    }

    /// Out-of-order busy/idle transitions are a caller bug: debug builds
    /// must fail loudly instead of silently dropping busy time.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time went backwards")]
    fn out_of_order_transition_panics_in_debug() {
        let mut u = UtilizationTracker::new(2);
        u.acquire(SimTime::from_millis(10), 1);
        u.release(SimTime::from_millis(5), 1);
    }

    /// In release builds the same bug is counted, not ignored.
    #[test]
    #[cfg(not(debug_assertions))]
    fn out_of_order_transition_counted_in_release() {
        let mut u = UtilizationTracker::new(2);
        u.acquire(SimTime::from_millis(10), 1);
        u.release(SimTime::from_millis(5), 1);
        u.acquire(SimTime::from_millis(7), 1);
        assert_eq!(u.time_anomalies(), 2);
        assert_eq!(u.busy(), 1);
    }

    #[test]
    fn monotone_transitions_report_no_anomalies() {
        let mut u = UtilizationTracker::new(2);
        u.acquire(SimTime::from_millis(1), 1);
        u.release(SimTime::from_millis(2), 1);
        // Queries with stale timestamps are fine: they clamp, they are not
        // busy/idle transitions.
        let _ = u.utilization(SimTime::from_millis(1));
        assert_eq!(u.time_anomalies(), 0);
    }

    #[test]
    fn busy_total_survives_window_reset() {
        let mut u = UtilizationTracker::new(4);
        u.acquire(SimTime::from_millis(0), 2);
        u.reset_window(SimTime::from_millis(10)); // 2 units x 10ms so far
        u.release(SimTime::from_millis(15), 2); // + 2 units x 5ms
        assert_eq!(
            u.busy_core_time_total(SimTime::from_millis(20)),
            SimDuration::from_millis(30)
        );
    }

    #[test]
    fn counter_rate() {
        let mut c = Counter::new();
        c.add(500);
        assert_eq!(c.rate_per_sec(SimDuration::from_secs(5)), 100.0);
        assert_eq!(c.rate_per_sec(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn hit_rate_tracks_and_merges() {
        let mut h = HitRate::new();
        for i in 0..10 {
            h.record(i % 2 == 0);
        }
        assert_eq!(h.rate(), 0.5);
        let mut other = HitRate::new();
        other.record(true);
        other.record(true);
        h.merge(other);
        assert_eq!(h.hits(), 7);
        assert_eq!(h.total(), 12);
    }
}
