//! Flight recorder: structured per-invocation lifecycle tracing with an
//! online invariant checker and Chrome-trace/Perfetto JSON export.
//!
//! Aggregate [`stats`](crate::stats) tell you *how much* time a run spent
//! where; they cannot tell you *which* squash cascade ate a request's
//! latency budget. The flight recorder fills that gap: engines emit one
//! [`TraceEvent`] per lifecycle transition (arrival, container acquire,
//! speculative launch, memoization hit, branch predict/resolve, squash with
//! cause and cascade depth, replay, retry/backoff, fault injection, commit,
//! terminal outcome), each stamped with [`SimTime`] — never wall-clock — so
//! a same-seed run reproduces the exact same event stream byte for byte.
//!
//! The recorder is a strict opt-in: a [`Tracer::disabled`] sink stores
//! nothing, checks nothing, and costs one branch per emission site, so the
//! measured engines are unperturbed when tracing is off.
//!
//! When enabled in checking mode, an [`InvariantChecker`] validates, online
//! and at end of run, that:
//!
//! 1. commit order is monotone per request (commit timestamps never go
//!    backwards, no slot commits twice, and commits only happen between
//!    arrival and the terminal event — slot *ids* are deliberately not
//!    required to increase, because fork branches commit interleaved),
//! 2. every launched execution reaches a terminal state — no leaked
//!    speculative slots after drain,
//! 3. `useful_core_time + squashed_core_time` equals the integrated busy
//!    core-time of the cluster (exact, in microseconds), and
//! 4. memoization tables never exceed their configured capacity.
//!
//! Violations are collected (not panicked) so a test can assert the list is
//! empty and a bench run can print them.

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

use crate::time::{SimDuration, SimTime};

/// One of the paper's Fig. 3 response-time phases, used to label execution
/// spans on the per-node tracks of the exported trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Creating the container and its network stack.
    ContainerCreation,
    /// Injecting code and starting the runtime proxy.
    RuntimeSetup,
    /// Front-end / controller scheduling work.
    Platform,
    /// Hop between a function and its successor.
    Transfer,
    /// Handler execution on a core.
    Execution,
    /// Waiting out a retry backoff after a fault.
    RetryBackoff,
}

impl Phase {
    /// Every phase, in Fig. 3 presentation order. Useful for analyses that
    /// bucket time by phase.
    pub const ALL: [Phase; 6] = [
        Phase::ContainerCreation,
        Phase::RuntimeSetup,
        Phase::Platform,
        Phase::Transfer,
        Phase::Execution,
        Phase::RetryBackoff,
    ];

    /// Stable name used in the exported JSON.
    pub fn name(self) -> &'static str {
        match self {
            Phase::ContainerCreation => "container_creation",
            Phase::RuntimeSetup => "runtime_setup",
            Phase::Platform => "platform",
            Phase::Transfer => "transfer",
            Phase::Execution => "execution",
            Phase::RetryBackoff => "retry_backoff",
        }
    }
}

/// Why a speculative execution was squashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SquashCause {
    /// A branch resolved against the predicted direction.
    WrongPath,
    /// A successor was launched with a mispredicted input.
    WrongInput,
    /// A read-write ordering violation through global storage.
    Violation,
    /// An injected fault killed the execution.
    Fault,
}

impl SquashCause {
    /// Stable name used in the exported JSON.
    pub fn name(self) -> &'static str {
        match self {
            SquashCause::WrongPath => "wrong_path",
            SquashCause::WrongInput => "wrong_input",
            SquashCause::Violation => "violation",
            SquashCause::Fault => "fault",
        }
    }
}

/// The payload of one recorded lifecycle event.
///
/// Identifiers are plain integers (request id, program-order slot index,
/// function id, node index) so the recorder stays independent of the
/// platform and engine crates that emit into it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A request entered the system.
    RequestArrival {
        /// Request id.
        req: u64,
    },
    /// A function execution was launched into a pipeline slot.
    SlotLaunch {
        /// Request id.
        req: u64,
        /// Program-order slot index.
        slot: u64,
        /// Function id.
        func: u32,
        /// True if launched speculatively (not the head slot).
        speculative: bool,
    },
    /// A container was acquired for an execution.
    ContainerAcquire {
        /// Request id.
        req: u64,
        /// Function id.
        func: u32,
        /// Node the container lives on.
        node: u32,
        /// True on a cold start, false on a warm pool hit.
        cold: bool,
    },
    /// A timed span of one Fig. 3 phase on one node. `at` is the start.
    Span {
        /// Request id.
        req: u64,
        /// Function id.
        func: u32,
        /// Node the span ran on.
        node: u32,
        /// Phase label.
        phase: Phase,
        /// End of the span (start is the event timestamp).
        end: SimTime,
    },
    /// A memoization-table lookup returned a predicted output.
    MemoHit {
        /// Request id.
        req: u64,
        /// Function id.
        func: u32,
    },
    /// The branch predictor speculated a direction.
    BranchPredict {
        /// Request id.
        req: u64,
        /// Predicted direction.
        taken: bool,
    },
    /// A speculated branch resolved.
    BranchResolve {
        /// Request id.
        req: u64,
        /// Predicted direction.
        predicted: bool,
        /// Actual direction.
        actual: bool,
    },
    /// A speculative execution was squashed.
    Squash {
        /// Request id.
        req: u64,
        /// First squashed slot.
        slot: u64,
        /// Why it was squashed.
        cause: SquashCause,
        /// Number of executions killed in the cascade (≥ 1).
        cascade: u32,
    },
    /// Core-time charged to the squashed-CPU ledger (Table IV).
    ///
    /// Every increment of `RunMetrics::squashed_core_time` emits exactly
    /// one `SquashCharge` carrying the same amount, so summing the
    /// amounts over a trace reconciles exactly with the engine's ledger
    /// for the traced window. `site` names the charge point
    /// (a [`SquashCause`] name for pipeline squashes, or an engine path
    /// such as `"teardown"`, `"orphan_callee"`, `"abort"`).
    SquashCharge {
        /// Request id.
        req: u64,
        /// Function whose work was discarded.
        func: u32,
        /// Charge site: squash cause or engine teardown path.
        site: &'static str,
        /// Cascade size of the squash this charge belongs to (0 when the
        /// charge did not come from a pipeline squash).
        cascade: u32,
        /// Core-time discarded.
        amount: SimDuration,
    },
    /// A squashed slot was relaunched with corrected inputs.
    Replay {
        /// Request id.
        req: u64,
        /// Slot being re-executed.
        slot: u64,
    },
    /// A faulted execution entered retry backoff.
    RetryBackoff {
        /// Request id.
        req: u64,
        /// Function id.
        func: u32,
        /// Attempt number about to run (1-based).
        attempt: u32,
        /// Backoff delay before the retry.
        backoff: SimDuration,
    },
    /// The fault injector fired.
    FaultInjected {
        /// Request id.
        req: u64,
        /// Injection site name (e.g. `"container_crash"`).
        site: &'static str,
    },
    /// A slot's effects were committed in program order.
    Commit {
        /// Request id.
        req: u64,
        /// Committed slot index.
        slot: u64,
        /// Function id.
        func: u32,
    },
    /// The request reached a terminal state.
    Terminal {
        /// Request id.
        req: u64,
        /// True on success, false on abort.
        completed: bool,
    },
}

/// One recorded event: a [`SimTime`] stamp plus the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the event happened (for spans: when the span started).
    pub at: SimTime,
    /// What happened.
    pub kind: TraceEventKind,
}

/// Collects invariant violations instead of panicking, so both tests and
/// bench binaries can report every failure of a run at once.
#[derive(Debug, Default)]
pub struct InvariantChecker {
    /// Per-request commit history: last commit time plus the set of
    /// already-committed slot ids.
    commits: HashMap<u64, (SimTime, HashSet<u64>)>,
    /// Requests that arrived and have not reached a terminal state.
    live_requests: HashMap<u64, ()>,
    violations: Vec<String>,
}

impl InvariantChecker {
    fn observe(&mut self, ev: &TraceEvent) {
        match &ev.kind {
            TraceEventKind::RequestArrival { req } => {
                self.live_requests.insert(*req, ());
                self.commits.remove(req);
            }
            TraceEventKind::Commit { req, slot, .. } => {
                if !self.live_requests.contains_key(req) {
                    self.violations.push(format!(
                        "commit order not monotone: request {req} committed slot {slot} \
                         outside its arrival..terminal lifetime"
                    ));
                }
                let (last_t, seen) = self
                    .commits
                    .entry(*req)
                    .or_insert_with(|| (ev.at, HashSet::new()));
                if ev.at < *last_t {
                    self.violations.push(format!(
                        "commit order not monotone: commit time went backwards for \
                         request {req} at slot {slot}"
                    ));
                }
                *last_t = ev.at;
                if !seen.insert(*slot) {
                    self.violations.push(format!(
                        "commit order not monotone: request {req} committed slot {slot} twice"
                    ));
                }
            }
            TraceEventKind::Terminal { req, .. } => {
                let was_live = self.live_requests.remove(req).is_some();
                if !was_live {
                    self.violations
                        .push(format!("request {req} reached a terminal state twice"));
                }
            }
            _ => {}
        }
    }

    /// Checks one memoization table against its capacity bound.
    pub fn check_memo_capacity(&mut self, func: u32, len: usize, capacity: usize) {
        if len > capacity {
            self.violations.push(format!(
                "memo table of function {func} holds {len} rows, capacity {capacity}"
            ));
        }
    }

    /// End-of-run validation: no leaked executions or requests, and the
    /// engine's attributed core-time (`useful + squashed`) exactly equals
    /// the cluster's integrated busy core-time over the same window.
    pub fn check_end_of_run(
        &mut self,
        live_instances: usize,
        useful: SimDuration,
        squashed: SimDuration,
        busy_integral: SimDuration,
    ) {
        if live_instances != 0 {
            self.violations.push(format!(
                "{live_instances} execution(s) never reached a terminal state"
            ));
        }
        if !self.live_requests.is_empty() {
            let mut ids: Vec<u64> = self.live_requests.keys().copied().collect();
            ids.sort_unstable();
            self.violations
                .push(format!("request(s) {ids:?} never reached a terminal state"));
        }
        let attributed = useful + squashed;
        if attributed != busy_integral {
            self.violations.push(format!(
                "core-time not conserved: useful {}us + squashed {}us = {}us, \
                 but integrated busy core-time is {}us",
                useful.as_micros(),
                squashed.as_micros(),
                attributed.as_micros(),
                busy_integral.as_micros()
            ));
        }
    }

    /// Violations found so far, in detection order.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }
}

#[derive(Debug)]
struct TracerInner {
    events: Vec<TraceEvent>,
    checker: Option<InvariantChecker>,
}

/// The recording sink engines emit into.
///
/// [`Tracer::disabled`] is the default no-op sink: [`Tracer::enabled`]
/// returns `false`, every emission site short-circuits on that one branch,
/// and no allocation ever happens — tracing is free when off.
///
/// # Example
///
/// ```
/// use specfaas_sim::trace::{TraceEventKind, Tracer};
/// use specfaas_sim::SimTime;
///
/// let mut t = Tracer::recording();
/// t.emit(SimTime::from_millis(1), TraceEventKind::RequestArrival { req: 0 });
/// assert_eq!(t.events().len(), 1);
/// let json = t.export_chrome_json();
/// assert!(json.starts_with("{\"traceEvents\":["));
/// ```
#[derive(Debug, Default)]
pub struct Tracer {
    inner: Option<Box<TracerInner>>,
}

impl Tracer {
    /// The no-op sink: records nothing, checks nothing.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// Records events without invariant checking.
    pub fn recording() -> Self {
        Tracer {
            inner: Some(Box::new(TracerInner {
                events: Vec::new(),
                checker: None,
            })),
        }
    }

    /// Records events and runs the online invariant checker.
    pub fn with_invariants() -> Self {
        Tracer {
            inner: Some(Box::new(TracerInner {
                events: Vec::new(),
                checker: Some(InvariantChecker::default()),
            })),
        }
    }

    /// True if events are being recorded. Emission sites gate on this so a
    /// disabled tracer costs a single predictable branch.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// True if the invariant checker is active.
    #[inline]
    pub fn checking(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.checker.is_some())
    }

    /// Records one event (no-op when disabled).
    pub fn emit(&mut self, at: SimTime, kind: TraceEventKind) {
        if let Some(inner) = &mut self.inner {
            let ev = TraceEvent { at, kind };
            if let Some(c) = &mut inner.checker {
                c.observe(&ev);
            }
            inner.events.push(ev);
        }
    }

    /// Forwards a memo-capacity check to the checker, if active.
    pub fn check_memo_capacity(&mut self, func: u32, len: usize, capacity: usize) {
        if let Some(c) = self.checker_mut() {
            c.check_memo_capacity(func, len, capacity);
        }
    }

    /// Forwards the end-of-run validation to the checker, if active.
    pub fn check_end_of_run(
        &mut self,
        live_instances: usize,
        useful: SimDuration,
        squashed: SimDuration,
        busy_integral: SimDuration,
    ) {
        if let Some(c) = self.checker_mut() {
            c.check_end_of_run(live_instances, useful, squashed, busy_integral);
        }
    }

    fn checker_mut(&mut self) -> Option<&mut InvariantChecker> {
        self.inner.as_mut().and_then(|i| i.checker.as_mut())
    }

    /// Invariant violations found so far (empty when not checking).
    pub fn violations(&self) -> &[String] {
        self.inner
            .as_ref()
            .and_then(|i| i.checker.as_ref())
            .map(|c| c.violations())
            .unwrap_or(&[])
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        self.inner
            .as_ref()
            .map(|i| i.events.as_slice())
            .unwrap_or(&[])
    }

    /// Exports the recorded events as Chrome-trace / Perfetto JSON.
    ///
    /// Layout: one *process* per cluster node (plus a synthetic
    /// `orchestrator` process for request-level events), and within each
    /// node one *thread lane* per concurrently-running span, assigned
    /// greedily — the visual equivalent of the node's occupied cores.
    /// Spans become `"ph":"X"` complete events; everything else becomes a
    /// `"ph":"i"` instant. Timestamps are simulated microseconds, so the
    /// output is byte-identical across same-seed runs.
    pub fn export_chrome_json(&self) -> String {
        export_chrome_json(self.events())
    }
}

/// Synthetic pid for request-level events with no node affinity.
const ORCH_PID: u32 = 1000;
/// Synthetic tid within a node process for instant events.
const EVENT_LANE: u32 = 999;

fn export_chrome_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
    };

    // Spans first: sort by (node, start, end, emission index) and assign
    // each to the first free lane of its node. The sort key is total, so
    // lane assignment is deterministic.
    let mut spans: Vec<(usize, &TraceEvent)> = events
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e.kind, TraceEventKind::Span { .. }))
        .collect();
    spans.sort_by_key(|(idx, e)| {
        let (node, end) = match &e.kind {
            TraceEventKind::Span { node, end, .. } => (*node, *end),
            _ => unreachable!(),
        };
        (node, e.at, end, *idx)
    });
    let mut nodes_seen: Vec<u32> = Vec::new();
    let mut lanes: HashMap<u32, Vec<SimTime>> = HashMap::new();
    let mut max_lane: HashMap<u32, u32> = HashMap::new();
    for (_, ev) in &spans {
        let (req, func, node, phase, end) = match &ev.kind {
            TraceEventKind::Span {
                req,
                func,
                node,
                phase,
                end,
            } => (*req, *func, *node, *phase, *end),
            _ => unreachable!(),
        };
        if !nodes_seen.contains(&node) {
            nodes_seen.push(node);
        }
        let node_lanes = lanes.entry(node).or_default();
        let lane = match node_lanes.iter().position(|free| *free <= ev.at) {
            Some(l) => {
                node_lanes[l] = end;
                l as u32
            }
            None => {
                node_lanes.push(end);
                (node_lanes.len() - 1) as u32
            }
        };
        let m = max_lane.entry(node).or_insert(0);
        *m = (*m).max(lane);
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\
             \"args\":{{\"req\":{},\"func\":{}}}}}",
            phase.name(),
            node,
            lane,
            ev.at.as_micros(),
            end.saturating_since(ev.at).as_micros(),
            req,
            func
        );
    }

    // Instant events, in emission order.
    for ev in events {
        let (name, pid, args) = match &ev.kind {
            TraceEventKind::Span { .. } => continue,
            TraceEventKind::RequestArrival { req } => {
                ("request_arrival", ORCH_PID, format!("\"req\":{req}"))
            }
            TraceEventKind::SlotLaunch {
                req,
                slot,
                func,
                speculative,
            } => (
                "slot_launch",
                ORCH_PID,
                format!(
                    "\"req\":{req},\"slot\":{slot},\"func\":{func},\"speculative\":{speculative}"
                ),
            ),
            TraceEventKind::ContainerAcquire {
                req,
                func,
                node,
                cold,
            } => (
                "container_acquire",
                *node,
                format!("\"req\":{req},\"func\":{func},\"cold\":{cold}"),
            ),
            TraceEventKind::MemoHit { req, func } => (
                "memo_hit",
                ORCH_PID,
                format!("\"req\":{req},\"func\":{func}"),
            ),
            TraceEventKind::BranchPredict { req, taken } => (
                "branch_predict",
                ORCH_PID,
                format!("\"req\":{req},\"taken\":{taken}"),
            ),
            TraceEventKind::BranchResolve {
                req,
                predicted,
                actual,
            } => (
                "branch_resolve",
                ORCH_PID,
                format!("\"req\":{req},\"predicted\":{predicted},\"actual\":{actual}"),
            ),
            TraceEventKind::Squash {
                req,
                slot,
                cause,
                cascade,
            } => (
                "squash",
                ORCH_PID,
                format!(
                    "\"req\":{req},\"slot\":{slot},\"cause\":\"{}\",\"cascade\":{cascade}",
                    cause.name()
                ),
            ),
            TraceEventKind::SquashCharge {
                req,
                func,
                site,
                cascade,
                amount,
            } => (
                "squash_charge",
                ORCH_PID,
                format!(
                    "\"req\":{req},\"func\":{func},\"site\":\"{site}\",\"cascade\":{cascade},\
                     \"amount_us\":{}",
                    amount.as_micros()
                ),
            ),
            TraceEventKind::Replay { req, slot } => {
                ("replay", ORCH_PID, format!("\"req\":{req},\"slot\":{slot}"))
            }
            TraceEventKind::RetryBackoff {
                req,
                func,
                attempt,
                backoff,
            } => (
                "retry_backoff",
                ORCH_PID,
                format!(
                    "\"req\":{req},\"func\":{func},\"attempt\":{attempt},\"backoff_us\":{}",
                    backoff.as_micros()
                ),
            ),
            TraceEventKind::FaultInjected { req, site } => (
                "fault_injected",
                ORCH_PID,
                format!("\"req\":{req},\"site\":\"{site}\""),
            ),
            TraceEventKind::Commit { req, slot, func } => (
                "commit",
                ORCH_PID,
                format!("\"req\":{req},\"slot\":{slot},\"func\":{func}"),
            ),
            TraceEventKind::Terminal { req, completed } => (
                "terminal",
                ORCH_PID,
                format!("\"req\":{req},\"completed\":{completed}"),
            ),
        };
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"g\",\"pid\":{pid},\"tid\":{EVENT_LANE},\
             \"ts\":{},\"args\":{{{args}}}}}",
            ev.at.as_micros()
        );
    }

    // Process/thread naming metadata so Perfetto shows readable tracks.
    for node in &nodes_seen {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{node},\"tid\":0,\
             \"args\":{{\"name\":\"node{node}\"}}}}",
        );
        for lane in 0..=*max_lane.get(node).unwrap_or(&0) {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{node},\"tid\":{lane},\
                 \"args\":{{\"name\":\"core-lane {lane}\"}}}}",
            );
        }
    }
    sep(&mut out);
    let _ = write!(
        out,
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{ORCH_PID},\"tid\":0,\
         \"args\":{{\"name\":\"orchestrator\"}}}}"
    );
    out.push_str("]}");
    out
}

/// Validates that `s` is well-formed JSON. Used by tests and the bench
/// `--trace` path in lieu of an external JSON crate.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                parse_value(b, pos)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(());
            }
            loop {
                parse_value(b, pos)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, "true"),
        Some(b'f') => parse_lit(b, pos, "false"),
        Some(b'n') => parse_lit(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:#x} at {pos}")),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {pos}"));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 2; // escape + escaped byte (\uXXXX not emitted here)
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(&c) = b.get(*pos) {
        if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
            *pos += 1;
        } else {
            break;
        }
    }
    if *pos == start {
        Err(format!("invalid number at byte {start}"))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut tr = Tracer::disabled();
        assert!(!tr.enabled());
        tr.emit(t(1), TraceEventKind::RequestArrival { req: 0 });
        assert!(tr.events().is_empty());
        assert!(tr.violations().is_empty());
    }

    #[test]
    fn recording_preserves_emission_order() {
        let mut tr = Tracer::recording();
        tr.emit(t(2), TraceEventKind::RequestArrival { req: 1 });
        tr.emit(t(1), TraceEventKind::RequestArrival { req: 0 });
        assert_eq!(tr.events().len(), 2);
        assert_eq!(tr.events()[0].at, t(2));
    }

    #[test]
    fn commit_monotonicity_violation_detected() {
        let mut tr = Tracer::with_invariants();
        tr.emit(t(0), TraceEventKind::RequestArrival { req: 7 });
        tr.emit(
            t(2),
            TraceEventKind::Commit {
                req: 7,
                slot: 2,
                func: 0,
            },
        );
        // Fork branches may commit out of slot-id order — not a violation.
        tr.emit(
            t(3),
            TraceEventKind::Commit {
                req: 7,
                slot: 1,
                func: 1,
            },
        );
        assert!(tr.violations().is_empty());
        // But commit time going backwards is one.
        tr.emit(
            t(1),
            TraceEventKind::Commit {
                req: 7,
                slot: 3,
                func: 2,
            },
        );
        assert_eq!(tr.violations().len(), 1);
        assert!(tr.violations()[0].contains("not monotone"));
    }

    #[test]
    fn double_commit_and_out_of_lifetime_commit_detected() {
        let mut tr = Tracer::with_invariants();
        tr.emit(t(0), TraceEventKind::RequestArrival { req: 4 });
        tr.emit(
            t(1),
            TraceEventKind::Commit {
                req: 4,
                slot: 0,
                func: 0,
            },
        );
        tr.emit(
            t(2),
            TraceEventKind::Commit {
                req: 4,
                slot: 0,
                func: 0,
            },
        );
        assert_eq!(tr.violations().len(), 1);
        assert!(tr.violations()[0].contains("twice"));
        tr.emit(
            t(3),
            TraceEventKind::Terminal {
                req: 4,
                completed: true,
            },
        );
        tr.emit(
            t(4),
            TraceEventKind::Commit {
                req: 4,
                slot: 1,
                func: 1,
            },
        );
        assert_eq!(tr.violations().len(), 2);
        assert!(tr.violations()[1].contains("lifetime"));
    }

    #[test]
    fn leaked_request_detected_at_end_of_run() {
        let mut tr = Tracer::with_invariants();
        tr.emit(t(0), TraceEventKind::RequestArrival { req: 3 });
        tr.check_end_of_run(0, SimDuration::ZERO, SimDuration::ZERO, SimDuration::ZERO);
        assert!(tr.violations().iter().any(|v| v.contains("terminal")));
    }

    #[test]
    fn core_time_conservation_violation_detected() {
        let mut tr = Tracer::with_invariants();
        tr.check_end_of_run(
            0,
            SimDuration::from_millis(10),
            SimDuration::from_millis(5),
            SimDuration::from_millis(16),
        );
        assert!(tr.violations().iter().any(|v| v.contains("not conserved")));
    }

    #[test]
    fn memo_capacity_violation_detected() {
        let mut tr = Tracer::with_invariants();
        tr.check_memo_capacity(4, 51, 50);
        assert!(tr.violations().iter().any(|v| v.contains("memo table")));
        tr.check_memo_capacity(4, 50, 50);
        assert_eq!(tr.violations().len(), 1);
    }

    #[test]
    fn export_is_valid_json_and_deterministic() {
        let build = || {
            let mut tr = Tracer::recording();
            tr.emit(t(0), TraceEventKind::RequestArrival { req: 0 });
            tr.emit(
                t(1),
                TraceEventKind::Span {
                    req: 0,
                    func: 2,
                    node: 0,
                    phase: Phase::Execution,
                    end: t(5),
                },
            );
            tr.emit(
                t(2),
                TraceEventKind::Span {
                    req: 0,
                    func: 3,
                    node: 0,
                    phase: Phase::Execution,
                    end: t(4),
                },
            );
            tr.emit(
                t(5),
                TraceEventKind::Squash {
                    req: 0,
                    slot: 1,
                    cause: SquashCause::WrongPath,
                    cascade: 2,
                },
            );
            tr.export_chrome_json()
        };
        let a = build();
        assert_eq!(a, build(), "export must be byte-identical");
        validate_json(&a).expect("export must be valid JSON");
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"ph\":\"i\""));
        assert!(a.contains("wrong_path"));
    }

    #[test]
    fn overlapping_spans_get_distinct_lanes() {
        let mut tr = Tracer::recording();
        for i in 0..2u64 {
            tr.emit(
                t(0),
                TraceEventKind::Span {
                    req: i,
                    func: 0,
                    node: 1,
                    phase: Phase::Execution,
                    end: t(10),
                },
            );
        }
        let json = tr.export_chrome_json();
        assert!(json.contains("\"pid\":1,\"tid\":0"));
        assert!(json.contains("\"pid\":1,\"tid\":1"));
    }

    #[test]
    fn sequential_spans_share_a_lane() {
        let mut tr = Tracer::recording();
        tr.emit(
            t(0),
            TraceEventKind::Span {
                req: 0,
                func: 0,
                node: 0,
                phase: Phase::Execution,
                end: t(5),
            },
        );
        tr.emit(
            t(5),
            TraceEventKind::Span {
                req: 1,
                func: 0,
                node: 0,
                phase: Phase::Execution,
                end: t(9),
            },
        );
        let json = tr.export_chrome_json();
        assert!(!json.contains("\"tid\":1,\"ts\""), "no second lane: {json}");
    }

    #[test]
    fn json_validator_accepts_and_rejects() {
        validate_json("{\"a\":[1,2.5,-3e4,true,false,null,\"s\\\"x\"]}").unwrap();
        assert!(validate_json("{\"a\":1").is_err());
        assert!(validate_json("[1,]").is_err());
        assert!(validate_json("{} extra").is_err());
        assert!(validate_json("").is_err());
    }
}
