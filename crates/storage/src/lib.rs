#![warn(missing_docs)]

//! # specfaas-storage
//!
//! Simulated global storage for the SpecFaaS reproduction.
//!
//! The paper's prototype intercepts `get`/`set` operations against a Redis
//! key-value store — the dominant storage interface for FaaS (§VI,
//! "Storage Request Interception"). This crate provides the equivalent
//! substrate:
//!
//! * [`Value`] — the dynamically typed data model that flows between
//!   functions (function inputs/outputs are JSON-like documents),
//! * [`KvStore`] — the global key-value store with a latency model and
//!   per-key version counters (the Data Buffer uses versions to detect
//!   stale reads),
//! * [`LocalCache`] — the per-node software cache that serverless nodes
//!   keep in front of remote storage (§V-C),
//! * [`blob`] — blob-access trace records and the statistics of the
//!   paper's Observation 4 (Azure Functions blob traces).

pub mod blob;
pub mod cache;
pub mod kv;
pub mod value;

pub use cache::LocalCache;
pub use kv::{KvStore, StorageLatency, Version};
pub use value::Value;
