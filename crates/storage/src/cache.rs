//! Per-node local software caches.
//!
//! Serverless nodes keep software caches of remote data so functions can
//! re-access previously-read records cheaply (paper §V-C cites a line of
//! prior caching work). In SpecFaaS the local cache additionally matters
//! for correctness: a squash must invalidate the squashed functions' cached
//! records, because they may hold speculative values.
//!
//! The cache is keyed by `(owner, key)` where the owner is a caller-chosen
//! id (the platform uses function-instance ids), so one structure can hold
//! private lines for many concurrently-running handler processes and
//! invalidate exactly one owner's lines on squash.

use specfaas_sim::hash::FxHashMap;
use std::hash::Hash;

use crate::value::Value;

/// A per-node software cache with per-owner invalidation.
///
/// `O` is the owner id type (the platform uses its function-instance id).
///
/// # Example
///
/// ```
/// use specfaas_storage::LocalCache;
/// use specfaas_storage::Value;
///
/// let mut cache: LocalCache<u32> = LocalCache::new();
/// cache.insert(1, "rec", Value::Int(7));
/// assert_eq!(cache.get(1, "rec"), Some(&Value::Int(7)));
/// cache.invalidate_owner(1);
/// assert_eq!(cache.get(1, "rec"), None);
/// ```
#[derive(Debug, Clone)]
pub struct LocalCache<O: Eq + Hash + Copy> {
    lines: FxHashMap<(O, String), Value>,
    hits: u64,
    misses: u64,
}

impl<O: Eq + Hash + Copy> Default for LocalCache<O> {
    fn default() -> Self {
        Self::new()
    }
}

impl<O: Eq + Hash + Copy> LocalCache<O> {
    /// Creates an empty cache.
    pub fn new() -> Self {
        LocalCache {
            lines: FxHashMap::default(),
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `key` for `owner`, recording a hit or miss.
    pub fn get(&mut self, owner: O, key: &str) -> Option<&Value> {
        // Two-phase to appease the borrow checker while still counting.
        if self.lines.contains_key(&(owner, key.to_owned())) {
            self.hits += 1;
            self.lines.get(&(owner, key.to_owned()))
        } else {
            self.misses += 1;
            None
        }
    }

    /// True if the owner has a line for `key` (no statistics recorded).
    pub fn contains(&self, owner: O, key: &str) -> bool {
        self.lines.contains_key(&(owner, key.to_owned()))
    }

    /// Inserts or replaces a line.
    pub fn insert(&mut self, owner: O, key: impl Into<String>, value: Value) {
        self.lines.insert((owner, key.into()), value);
    }

    /// Drops every line belonging to `owner` (used on squash and on
    /// commit, when the handler process dies). Returns how many lines were
    /// dropped.
    pub fn invalidate_owner(&mut self, owner: O) -> usize {
        let before = self.lines.len();
        self.lines.retain(|(o, _), _| *o != owner);
        before - self.lines.len()
    }

    /// Number of live lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True if the cache holds no lines.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Cache hits observed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses observed.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_accounting() {
        let mut c: LocalCache<u8> = LocalCache::new();
        assert_eq!(c.get(1, "k"), None);
        c.insert(1, "k", Value::Int(1));
        assert!(c.get(1, "k").is_some());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn owners_are_isolated() {
        let mut c: LocalCache<u8> = LocalCache::new();
        c.insert(1, "k", Value::Int(1));
        assert_eq!(c.get(2, "k"), None, "other owner's line is invisible");
    }

    #[test]
    fn invalidate_owner_is_selective() {
        let mut c: LocalCache<u8> = LocalCache::new();
        c.insert(1, "a", Value::Int(1));
        c.insert(1, "b", Value::Int(2));
        c.insert(2, "a", Value::Int(3));
        assert_eq!(c.invalidate_owner(1), 2);
        assert_eq!(c.len(), 1);
        assert!(c.contains(2, "a"));
    }

    #[test]
    fn insert_replaces() {
        let mut c: LocalCache<u8> = LocalCache::new();
        c.insert(1, "k", Value::Int(1));
        c.insert(1, "k", Value::Int(2));
        assert_eq!(c.get(1, "k"), Some(&Value::Int(2)));
        assert_eq!(c.len(), 1);
    }
}
