//! Blob-access trace records and aggregate statistics.
//!
//! The paper's Observation 4 analyzes blob accesses in Microsoft Azure
//! Functions traces and reports: out of 40 M accesses only 23 % are writes;
//! two thirds of blobs are read-only; 99.9 % of writable blobs are written
//! fewer than 10 times; and the write→read gap to the same location exceeds
//! 1 s in 96 % of cases (10 s in 27 %). Those traces are proprietary, so the
//! apps crate generates synthetic traces matched to the published
//! statistics; this module defines the record type and the statistics
//! computation, which runs identically on real or synthetic data.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use specfaas_sim::{SimDuration, SimTime};

/// The direction of a blob access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A read of the blob.
    Read,
    /// A write (create or update) of the blob.
    Write,
}

/// One blob access in a trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlobAccess {
    /// When the access happened.
    pub at: SimTime,
    /// Which blob was accessed.
    pub blob: String,
    /// Read or write.
    pub kind: AccessKind,
}

/// Aggregate statistics over a blob trace — the exact quantities of
/// Observation 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlobTraceStats {
    /// Total number of accesses analyzed.
    pub accesses: u64,
    /// Fraction of accesses that are writes.
    pub write_fraction: f64,
    /// Fraction of blobs that are never written.
    pub read_only_blob_fraction: f64,
    /// Among writable blobs, fraction written fewer than 10 times.
    pub writable_written_lt10_fraction: f64,
    /// Fraction of write→read gaps (to the same blob) longer than 1 s.
    pub gap_over_1s_fraction: f64,
    /// Fraction of write→read gaps longer than 10 s.
    pub gap_over_10s_fraction: f64,
}

impl BlobTraceStats {
    /// Computes the Observation-4 statistics over a trace.
    ///
    /// The trace does not need to be sorted; it is sorted internally by
    /// timestamp (stable, so same-instant accesses keep input order).
    /// Returns `None` for an empty trace.
    pub fn compute(trace: &[BlobAccess]) -> Option<BlobTraceStats> {
        if trace.is_empty() {
            return None;
        }
        let mut sorted: Vec<&BlobAccess> = trace.iter().collect();
        sorted.sort_by_key(|a| a.at);

        let mut writes = 0u64;
        let mut per_blob_writes: HashMap<&str, u64> = HashMap::new();
        let mut blobs: HashMap<&str, ()> = HashMap::new();
        let mut last_write: HashMap<&str, SimTime> = HashMap::new();
        let mut gaps: Vec<SimDuration> = Vec::new();

        for a in &sorted {
            blobs.insert(a.blob.as_str(), ());
            match a.kind {
                AccessKind::Write => {
                    writes += 1;
                    *per_blob_writes.entry(a.blob.as_str()).or_insert(0) += 1;
                    last_write.insert(a.blob.as_str(), a.at);
                }
                AccessKind::Read => {
                    // Gap from the most recent write to this read; only the
                    // first read after each write is a dependence edge.
                    if let Some(w) = last_write.remove(a.blob.as_str()) {
                        gaps.push(a.at - w);
                    }
                }
            }
        }

        let total_blobs = blobs.len() as f64;
        let writable = per_blob_writes.len();
        let read_only = blobs.len() - writable;
        let lt10 = per_blob_writes.values().filter(|&&n| n < 10).count();

        let gap_frac = |threshold: SimDuration| {
            if gaps.is_empty() {
                0.0
            } else {
                gaps.iter().filter(|g| **g > threshold).count() as f64 / gaps.len() as f64
            }
        };

        Some(BlobTraceStats {
            accesses: sorted.len() as u64,
            write_fraction: writes as f64 / sorted.len() as f64,
            read_only_blob_fraction: read_only as f64 / total_blobs,
            writable_written_lt10_fraction: if writable == 0 {
                1.0
            } else {
                lt10 as f64 / writable as f64
            },
            gap_over_1s_fraction: gap_frac(SimDuration::from_secs(1)),
            gap_over_10s_fraction: gap_frac(SimDuration::from_secs(10)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(at_ms: u64, blob: &str, kind: AccessKind) -> BlobAccess {
        BlobAccess {
            at: SimTime::from_millis(at_ms),
            blob: blob.to_owned(),
            kind,
        }
    }

    #[test]
    fn empty_trace_yields_none() {
        assert_eq!(BlobTraceStats::compute(&[]), None);
    }

    #[test]
    fn write_fraction_and_read_only() {
        let trace = vec![
            acc(0, "a", AccessKind::Read),
            acc(1, "a", AccessKind::Read),
            acc(2, "b", AccessKind::Write),
            acc(3, "b", AccessKind::Read),
        ];
        let s = BlobTraceStats::compute(&trace).unwrap();
        assert_eq!(s.accesses, 4);
        assert!((s.write_fraction - 0.25).abs() < 1e-12);
        // "a" is read-only, "b" is writable: 1 of 2.
        assert!((s.read_only_blob_fraction - 0.5).abs() < 1e-12);
        assert_eq!(s.writable_written_lt10_fraction, 1.0);
    }

    #[test]
    fn gap_fractions() {
        let trace = vec![
            acc(0, "a", AccessKind::Write),
            acc(500, "a", AccessKind::Read), // 0.5s gap
            acc(1_000, "b", AccessKind::Write),
            acc(3_000, "b", AccessKind::Read), // 2s gap
            acc(10_000, "c", AccessKind::Write),
            acc(25_000, "c", AccessKind::Read), // 15s gap
        ];
        let s = BlobTraceStats::compute(&trace).unwrap();
        assert!((s.gap_over_1s_fraction - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.gap_over_10s_fraction - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn only_first_read_after_write_counts_as_gap() {
        let trace = vec![
            acc(0, "a", AccessKind::Write),
            acc(100, "a", AccessKind::Read),
            acc(200, "a", AccessKind::Read), // second read: no new gap edge
        ];
        let s = BlobTraceStats::compute(&trace).unwrap();
        assert_eq!(s.gap_over_1s_fraction, 0.0);
    }

    #[test]
    fn heavily_written_blob_counts_against_lt10() {
        let mut trace = Vec::new();
        for i in 0..12 {
            trace.push(acc(i, "hot", AccessKind::Write));
        }
        trace.push(acc(100, "cold", AccessKind::Write));
        let s = BlobTraceStats::compute(&trace).unwrap();
        assert!((s.writable_written_lt10_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unsorted_trace_is_handled() {
        let trace = vec![
            acc(3_000, "b", AccessKind::Read),
            acc(1_000, "b", AccessKind::Write),
        ];
        let s = BlobTraceStats::compute(&trace).unwrap();
        assert!((s.gap_over_1s_fraction - 1.0).abs() < 1e-12);
    }
}
