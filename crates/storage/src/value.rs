//! The dynamically typed data model exchanged between serverless functions.
//!
//! Function inputs and outputs in FaaS platforms are JSON documents. The
//! memoization tables (paper §V-B) key on *exact input values*, so [`Value`]
//! implements `Hash`/`Eq` with canonical float bit patterns, making it
//! usable directly as a `HashMap` key.

use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

/// A JSON-like dynamically typed value.
///
/// # Example
///
/// ```
/// use specfaas_storage::Value;
///
/// let v = Value::map([
///     ("user", Value::str("alice")),
///     ("balance", Value::Int(100)),
/// ]);
/// assert_eq!(v.get_field("user").unwrap().as_str(), Some("alice"));
/// assert!(v.truthy());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum Value {
    /// Absent / null.
    #[default]
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. Compared and hashed by canonical bit pattern
    /// (`-0.0` is normalized to `0.0`; `NaN`s are all equal).
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Ordered list.
    List(Vec<Value>),
    /// String-keyed map with deterministic (sorted) iteration order.
    Map(BTreeMap<String, Value>),
}

impl Eq for Value {}

fn canonical_bits(f: f64) -> u64 {
    if f.is_nan() {
        f64::NAN.to_bits()
    } else if f == 0.0 {
        0 // normalize -0.0 and +0.0
    } else {
        f.to_bits()
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        core::mem::discriminant(self).hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(f) => canonical_bits(*f).hash(state),
            Value::Str(s) => s.hash(state),
            Value::List(l) => l.hash(state),
            Value::Map(m) => {
                for (k, v) in m {
                    k.hash(state);
                    v.hash(state);
                }
            }
        }
    }
}

impl Value {
    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Convenience constructor for a map value.
    pub fn map<K: Into<String>, const N: usize>(entries: [(K, Value); N]) -> Value {
        Value::Map(entries.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Convenience constructor for a list value.
    pub fn list<const N: usize>(items: [Value; N]) -> Value {
        Value::List(items.into())
    }

    /// JavaScript-style truthiness, used by branch conditions (`when`
    /// directives branch on the condition function's output).
    pub fn truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0 && !f.is_nan(),
            Value::Str(s) => !s.is_empty(),
            Value::List(l) => !l.is_empty(),
            Value::Map(m) => !m.is_empty(),
        }
    }

    /// Borrow as `bool` if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrow as `i64` if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric view: `Int` and `Float` both convert; everything else is
    /// `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Borrow as `&str` if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as a list if this is a `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Borrow as a map if this is a `Map`.
    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up `field` if this is a `Map`.
    pub fn get_field(&self, field: &str) -> Option<&Value> {
        self.as_map().and_then(|m| m.get(field))
    }

    /// Inserts `field` into a `Map`, turning `Null` into an empty map
    /// first. Returns the previous value if any.
    ///
    /// # Panics
    /// Panics if `self` is neither `Map` nor `Null`.
    pub fn set_field(&mut self, field: impl Into<String>, value: Value) -> Option<Value> {
        if matches!(self, Value::Null) {
            *self = Value::Map(BTreeMap::new());
        }
        match self {
            Value::Map(m) => m.insert(field.into(), value),
            other => panic!("set_field on non-map value {other:?}"),
        }
    }

    /// True if this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Approximate in-memory footprint in bytes, used to size the
    /// memoization tables the way the paper does (§V-B reports 1.5 KB–30 KB
    /// for 100–1K entries).
    pub fn approx_size_bytes(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 8,
            Value::Str(s) => 8 + s.len(),
            Value::List(l) => 8 + l.iter().map(Value::approx_size_bytes).sum::<usize>(),
            Value::Map(m) => {
                8 + m
                    .iter()
                    .map(|(k, v)| k.len() + v.approx_size_bytes())
                    .sum::<usize>()
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Float(f)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::List(v.into_iter().map(Into::into).collect())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Map(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{k:?}:{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn truthiness_rules() {
        assert!(!Value::Null.truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(Value::Bool(true).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(Value::Int(-1).truthy());
        assert!(!Value::Float(0.0).truthy());
        assert!(!Value::Float(f64::NAN).truthy());
        assert!(!Value::str("").truthy());
        assert!(Value::str("x").truthy());
        assert!(!Value::List(vec![]).truthy());
        assert!(!Value::Map(BTreeMap::new()).truthy());
    }

    #[test]
    fn float_hash_canonicalization() {
        assert_eq!(hash_of(&Value::Float(0.0)), hash_of(&Value::Float(-0.0)));
        assert_eq!(
            hash_of(&Value::Float(f64::NAN)),
            hash_of(&Value::Float(-f64::NAN))
        );
        assert_ne!(hash_of(&Value::Float(1.0)), hash_of(&Value::Float(2.0)));
    }

    #[test]
    fn map_access_and_mutation() {
        let mut v = Value::Null;
        assert_eq!(v.set_field("a", Value::Int(1)), None);
        assert_eq!(
            v.set_field("a", Value::Int(2)),
            Some(Value::Int(1)),
            "set_field returns the displaced value"
        );
        assert_eq!(v.get_field("a"), Some(&Value::Int(2)));
        assert_eq!(v.get_field("missing"), None);
    }

    #[test]
    #[should_panic(expected = "set_field on non-map")]
    fn set_field_on_scalar_panics() {
        let mut v = Value::Int(3);
        v.set_field("x", Value::Null);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(2.5), Value::Float(2.5));
        assert_eq!(Value::from("hi"), Value::str("hi"));
        assert_eq!(
            Value::from(vec![1i64, 2]),
            Value::list([Value::Int(1), Value::Int(2)])
        );
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::str("x").as_f64(), None);
    }

    #[test]
    fn display_is_compact_json_like() {
        let v = Value::map([("k", Value::list([Value::Int(1), Value::str("s")]))]);
        assert_eq!(v.to_string(), "{\"k\":[1,\"s\"]}");
    }

    #[test]
    fn approx_size_scales_with_content() {
        let small = Value::Int(1);
        let big = Value::map([("key", Value::str("x".repeat(100)))]);
        assert!(big.approx_size_bytes() > small.approx_size_bytes() + 90);
    }

    #[test]
    fn equality_distinguishes_types() {
        assert_ne!(Value::Int(1), Value::Float(1.0));
        assert_ne!(Value::Null, Value::Bool(false));
        assert_eq!(
            Value::map([("a", Value::Int(1))]),
            Value::map([("a", Value::Int(1))])
        );
    }
}
