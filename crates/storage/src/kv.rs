//! The simulated global key-value store (Redis stand-in).
//!
//! Every record carries a monotonically increasing [`Version`], which the
//! SpecFaaS Data Buffer uses to reason about write-backs and which the
//! characterization experiments use to measure update frequency
//! (Observation 4).

use specfaas_sim::hash::FxHashMap;

use serde::{Deserialize, Serialize};
use specfaas_sim::SimDuration;

use crate::value::Value;

/// Monotone per-key version number; bumped on every committed write.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Version(pub u64);

/// Latency model for remote storage operations.
///
/// Calibrated to typical intra-datacenter Redis round trips: sub-millisecond
/// gets, slightly costlier sets. These contribute to function execution time
/// in both the baseline and SpecFaaS, so the comparison is fair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageLatency {
    /// Round-trip time of a `get`.
    pub read: SimDuration,
    /// Round-trip time of a `set`.
    pub write: SimDuration,
}

impl Default for StorageLatency {
    fn default() -> Self {
        StorageLatency {
            read: SimDuration::from_micros(300),
            write: SimDuration::from_micros(500),
        }
    }
}

/// The global key-value store shared by all nodes of the cluster.
///
/// Reads and writes are instantaneous state changes; the *latency* of an
/// operation is modeled by the caller scheduling completion events using
/// [`KvStore::latency`]. Keeping state changes synchronous makes the Data
/// Buffer's commit/write-back logic straightforward to verify.
///
/// # Example
///
/// ```
/// use specfaas_storage::{KvStore, Value};
///
/// let mut kv = KvStore::new();
/// kv.set("user:1", Value::str("alice"));
/// assert_eq!(kv.get("user:1"), Some(&Value::str("alice")));
/// assert_eq!(kv.version("user:1").unwrap().0, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct KvStore {
    records: FxHashMap<String, (Value, Version)>,
    latency: StorageLatency,
    reads: u64,
    writes: u64,
}

impl KvStore {
    /// Creates an empty store with the default latency model.
    pub fn new() -> Self {
        KvStore::default()
    }

    /// Creates an empty store with a custom latency model.
    pub fn with_latency(latency: StorageLatency) -> Self {
        KvStore {
            latency,
            ..KvStore::default()
        }
    }

    /// The latency model.
    pub fn latency(&self) -> StorageLatency {
        self.latency
    }

    /// Reads a record. Counts as one remote read.
    pub fn get(&mut self, key: &str) -> Option<&Value> {
        self.reads += 1;
        self.records.get(key).map(|(v, _)| v)
    }

    /// Reads a record without counting it (used by validation logic, not by
    /// function execution).
    pub fn peek(&self, key: &str) -> Option<&Value> {
        self.records.get(key).map(|(v, _)| v)
    }

    /// Writes a record, bumping its version. Returns the new version.
    pub fn set(&mut self, key: impl Into<String>, value: Value) -> Version {
        self.writes += 1;
        let entry = self
            .records
            .entry(key.into())
            .or_insert((Value::Null, Version(0)));
        entry.0 = value;
        entry.1 = Version(entry.1 .0 + 1);
        entry.1
    }

    /// Deletes a record. Returns the removed value, if present.
    pub fn delete(&mut self, key: &str) -> Option<Value> {
        self.records.remove(key).map(|(v, _)| v)
    }

    /// Current version of a key, if present.
    pub fn version(&self, key: &str) -> Option<Version> {
        self.records.get(key).map(|(_, v)| *v)
    }

    /// Number of records stored.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no records are stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total remote reads served.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Total remote writes served.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Iterates over `(key, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.records.iter().map(|(k, (v, _))| (k.as_str(), v))
    }

    /// Clears all records and statistics (fresh run of an experiment).
    pub fn clear(&mut self) {
        self.records.clear();
        self.reads = 0;
        self.writes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut kv = KvStore::new();
        kv.set("a", Value::Int(1));
        assert_eq!(kv.get("a"), Some(&Value::Int(1)));
        assert_eq!(kv.get("missing"), None);
    }

    #[test]
    fn versions_increment_per_key() {
        let mut kv = KvStore::new();
        assert_eq!(kv.set("a", Value::Int(1)), Version(1));
        assert_eq!(kv.set("a", Value::Int(2)), Version(2));
        assert_eq!(kv.set("b", Value::Int(1)), Version(1));
        assert_eq!(kv.version("a"), Some(Version(2)));
        assert_eq!(kv.version("missing"), None);
    }

    #[test]
    fn counters_track_traffic() {
        let mut kv = KvStore::new();
        kv.set("a", Value::Int(1));
        kv.get("a");
        kv.get("b");
        kv.peek("a"); // not counted
        assert_eq!(kv.read_count(), 2);
        assert_eq!(kv.write_count(), 1);
    }

    #[test]
    fn delete_removes() {
        let mut kv = KvStore::new();
        kv.set("a", Value::Int(1));
        assert_eq!(kv.delete("a"), Some(Value::Int(1)));
        assert_eq!(kv.delete("a"), None);
        assert!(kv.is_empty());
    }

    #[test]
    fn clear_resets_everything() {
        let mut kv = KvStore::new();
        kv.set("a", Value::Int(1));
        kv.get("a");
        kv.clear();
        assert!(kv.is_empty());
        assert_eq!(kv.read_count(), 0);
        assert_eq!(kv.write_count(), 0);
    }

    #[test]
    fn default_latency_is_submillisecond() {
        let kv = KvStore::new();
        assert!(kv.latency().read < SimDuration::from_millis(1));
        assert!(kv.latency().write < SimDuration::from_millis(1));
    }
}
