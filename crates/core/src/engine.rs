//! The SpecFaaS engine: the speculative controller driving the platform
//! substrate (paper §V–§VI).
//!
//! Per application invocation the engine maintains a [`Pipeline`] of
//! program-ordered function slots and a [`DataBuffer`]. It repeatedly
//! picks the next function from the [`SequenceTable`] (predicting branch
//! outcomes and memoizing data dependences), launches it — possibly
//! speculatively — on the cluster, detects mispredictions and dependence
//! violations, squashes and re-launches offenders, and commits functions
//! strictly in order. Persistent structures (sequence table, branch
//! predictor, memoization tables, stall list) live across invocations and
//! are only ever updated with committed, non-speculative data (§V-E).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use specfaas_sim::hash::{FxHashMap, FxHashSet};
use std::sync::Arc;

use specfaas_platform::cluster::{Cluster, NodeId};
use specfaas_platform::container::ContainerAcquire;
use specfaas_platform::exec::{FnInstance, InstanceId, InstanceState};
use specfaas_platform::metrics::{InvocationRecord, RequestOutcome, RunMetrics};
use specfaas_platform::overheads::OverheadModel;
use specfaas_platform::workload::{RequestId, Workload};
use specfaas_sim::timeseries::MetricsRegistry;
use specfaas_sim::trace::{Phase, SquashCause, TraceEventKind, Tracer};
use specfaas_sim::{FaultInjector, FaultPlan, FaultSite, RetryPolicy};
use specfaas_sim::{SimDuration, SimRng, SimTime, Simulator};
use specfaas_storage::{KvStore, Value};
use specfaas_workflow::{AppSpec, Effect, EntryKind, FuncId, Interp, Program};

use crate::config::{SpecConfig, SquashMechanism};
use crate::databuffer::{DataBuffer, ReadResult};
use crate::memo::MemoTables;
use crate::pipeline::{Pipeline, SlotId, SlotRole, SlotState};
use crate::predictor::{BranchPredictor, BranchSite, PathHistory, Prediction};
use crate::seqtable::SequenceTable;
use crate::stall::StallList;

/// Events of the speculative engine.
#[derive(Debug)]
enum Ev {
    Arrival,
    /// Spec-launch overhead paid; acquire container + core.
    Launch(InstanceId),
    /// Cold start finished.
    ContainerReady(InstanceId),
    /// The instance's pending effect completed; step the interpreter.
    Resume(InstanceId, Option<Value>),
    /// Commit controller service finished; apply the commit.
    CommitApply(RequestId, SlotId),
    /// Process-kill / container-kill squash finished; release resources.
    SquashRelease(InstanceId, bool),
    /// Backoff after a transient KV fault elapsed; retry the operation.
    KvRetry(InstanceId, KvOp, u32),
    /// Backoff after a slot fault elapsed; the slot may relaunch.
    RetrySlot(RequestId, SlotId),
    /// Invocation watchdog fired for the instance.
    Timeout(InstanceId),
    /// Final response delivered.
    Complete(RequestId),
}

/// Boxed request-input generator driven by the engine RNG.
type InputGen = Box<dyn FnMut(&mut SimRng) -> Value>;

/// A storage operation being retried across transient KV faults.
#[derive(Debug, Clone)]
enum KvOp {
    Get { key: String },
    Set { key: String, value: Value },
}

/// Why a squash happens (drives reset-vs-remove semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SquashKind {
    /// Control misprediction: wrong-path slots are removed outright.
    WrongPath,
    /// Data misprediction: the first victim re-executes with a corrected
    /// input; everything after it is removed.
    WrongInput,
    /// Data-dependence violation: the first victim re-executes with the
    /// same input (it will now read forwarded data); the rest is removed.
    Violation,
    /// Injected fault on the first victim's instance: it re-executes with
    /// the same input after backoff; dependents are removed and counted
    /// as squashed-due-to-fault.
    Fault,
}

#[derive(Debug, Default)]
struct CallState {
    /// Call-site cursor (how many calls the caller has issued).
    cursor: usize,
    /// Prefetched callee slots, in call order, not yet consumed.
    prefetched: Vec<SlotId>,
}

#[derive(Debug)]
struct StalledRead {
    slot: SlotId,
    inst: InstanceId,
    key: String,
    producer: SlotId,
}

/// A committed-knowledge record, applied to the persistent tables only
/// when the whole invocation completes (so speculative data never leaks
/// into them, §V-E).
#[derive(Debug)]
enum Learned {
    Memo {
        func: FuncId,
        input: Value,
        output: Value,
        callee_inputs: Vec<Value>,
    },
    Branch {
        entry: usize,
        path: PathHistory,
        taken: bool,
    },
    Calls {
        caller: FuncId,
        callees: Vec<FuncId>,
    },
}

/// A committed call observation bubbled up from a consumed callee:
/// its own input/output plus its *direct* callee list, promoted to the
/// persistent tables when the owning top-level entry slot commits.
#[derive(Debug)]
struct CallRecord {
    func: FuncId,
    input: Value,
    output: Value,
    callee_funcs: Vec<FuncId>,
    callee_inputs: Vec<Value>,
}

#[derive(Debug)]
struct Req {
    arrived: SimTime,
    ctrl: NodeId,
    measured: bool,
    pipeline: Pipeline,
    buffer: DataBuffer,
    slot_inst: FxHashMap<SlotId, InstanceId>,
    call_state: FxHashMap<SlotId, CallState>,
    /// Callee slot → caller slot blocked waiting for it.
    waiting_callers: FxHashMap<SlotId, SlotId>,
    /// Caller slot → callee args it is waiting to consume (revalidated on
    /// callee completion).
    waiting_args: FxHashMap<SlotId, Value>,
    stalled_reads: Vec<StalledRead>,
    /// Slots whose HTTP request is deferred until they are head.
    deferred_http: FxHashMap<SlotId, InstanceId>,
    /// Slots whose program-order successor has been created.
    extended: FxHashSet<SlotId>,
    /// Core-time consumed by completed-but-uncommitted slots.
    slot_cpu: FxHashMap<SlotId, SimDuration>,
    /// Fork-join contributions: join entry → (payloads by pipeline pos).
    fork_joins: FxHashMap<usize, Vec<Value>>,
    /// Call observations per top-level entry slot, promoted at commit.
    call_records: FxHashMap<SlotId, Vec<CallRecord>>,
    /// Commit currently being processed.
    committing: Option<SlotId>,
    /// Failed attempts per slot (fault-injection retry accounting).
    attempts: FxHashMap<SlotId, u32>,
    /// Slots whose relaunch is held until their retry backoff elapses.
    retry_hold: FxHashSet<SlotId>,
    learned: Vec<Learned>,
    committed_sequence: Vec<u32>,
    functions_run: u32,
    functions_squashed: u32,
    end_committed: bool,
    completed: bool,
}

struct InstMeta {
    req: RequestId,
    slot: SlotId,
    container_acquired: bool,
}

/// The SpecFaaS speculative execution engine for one application.
///
/// # Example
///
/// ```no_run
/// use specfaas_core::{SpecEngine, SpecConfig};
/// # fn app() -> specfaas_workflow::AppSpec { unimplemented!() }
/// let mut engine = SpecEngine::new(std::sync::Arc::new(app()), SpecConfig::full(), 42);
/// engine.prewarm();
/// // Warm the predictor + memoization tables, then measure.
/// engine.run_closed(200, |_rng| specfaas_storage::Value::Null);
/// let metrics = engine.run_closed(100, |_rng| specfaas_storage::Value::Null);
/// println!("mean response: {:.2} ms", metrics.mean_response_ms());
/// ```
pub struct SpecEngine {
    app: Arc<AppSpec>,
    /// The simulated cluster.
    pub cluster: Cluster,
    /// Global storage.
    pub kv: KvStore,
    /// Timing constants.
    pub model: OverheadModel,
    /// Speculation policy.
    pub config: SpecConfig,
    sim: Simulator<Ev>,
    rng: SimRng,
    /// Deterministic fault injector (disabled unless `enable_faults`).
    faults: FaultInjector,
    /// Retry/backoff/timeout policy applied when faults strike.
    retry: RetryPolicy,
    /// Seed the engine was built with (fault stream derivation).
    seed: u64,
    /// Flight recorder (disabled by default; see [`SpecEngine::set_tracer`]).
    tracer: Tracer,
    /// Cluster busy-core-time integral at tracer install / last end-of-run
    /// check, so the conservation invariant compares per-window deltas.
    busy_snapshot: SimDuration,
    /// (useful, squashed) core time already attributed when the tracer was
    /// installed — excluded from the first conservation check.
    attributed_base: (SimDuration, SimDuration),
    /// Core time a dying handler keeps its core busy between the kill and
    /// its `SquashRelease` (the kill latency). Deliberately *not* part of
    /// [`RunMetrics::squashed_core_time`] (which reproduces the paper's
    /// wasted-CPU attribution at kill time); tracked here so the
    /// conservation invariant `useful + squashed == busy` still closes.
    squash_kill_busy: SimDuration,
    /// `squash_kill_busy` value at tracer install / last end-of-run check.
    kill_busy_base: SimDuration,
    /// Time-series metrics (disabled by default; see
    /// [`SpecEngine::set_registry`]). Sampling is strictly read-only on
    /// engine state: it never draws RNG or schedules events.
    registry: MetricsRegistry,
    /// Live instances whose launch was speculative (registry-gated;
    /// pruned lazily at sample time). Feeds the in-flight-speculation
    /// gauge without touching the unconditional instance bookkeeping.
    spec_live: FxHashSet<InstanceId>,
    /// Completion instants of issued KV operations (registry-gated
    /// min-heap). Entries at or before the sample instant are popped, so
    /// the heap size at `now` is the outstanding-KV-ops gauge.
    kv_pending: BinaryHeap<Reverse<SimTime>>,
    seqtable: SequenceTable,
    predictor: BranchPredictor,
    memos: MemoTables,
    stall_list: StallList,
    instances: FxHashMap<InstanceId, FnInstance>,
    meta: FxHashMap<InstanceId, InstMeta>,
    /// Lazily squashed instances still running in the background.
    orphans: FxHashSet<InstanceId>,
    requests: FxHashMap<RequestId, Req>,
    next_inst: u64,
    next_req: u64,
    metrics: RunMetrics,
    workload: Option<Workload>,
    gen_deadline: SimTime,
    input_gen: Option<InputGen>,
    measure_from: SimTime,
    /// Closed-loop mode: each completion immediately submits the next
    /// request (bounded concurrency, like a fixed client pool).
    closed_loop: bool,
}

impl SpecEngine {
    /// Creates an engine for `app` on the paper's 5-node testbed.
    pub fn new(app: Arc<AppSpec>, config: SpecConfig, seed: u64) -> Self {
        let functions = app.registry.len();
        let seqtable = SequenceTable::new(app.compiled.clone());
        SpecEngine {
            app,
            cluster: Cluster::paper_testbed(),
            kv: KvStore::new(),
            model: OverheadModel::default(),
            predictor: BranchPredictor::new(config.branch_confidence_window),
            memos: MemoTables::new(functions, config.memo_capacity),
            stall_list: StallList::new(config.stall_after_squashes),
            config,
            sim: Simulator::new(),
            rng: SimRng::seed(seed),
            faults: FaultInjector::disabled(),
            retry: RetryPolicy::default(),
            seed,
            tracer: Tracer::disabled(),
            busy_snapshot: SimDuration::ZERO,
            attributed_base: (SimDuration::ZERO, SimDuration::ZERO),
            squash_kill_busy: SimDuration::ZERO,
            kill_busy_base: SimDuration::ZERO,
            registry: MetricsRegistry::disabled(),
            spec_live: FxHashSet::default(),
            kv_pending: BinaryHeap::new(),
            seqtable,
            instances: FxHashMap::default(),
            meta: FxHashMap::default(),
            orphans: FxHashSet::default(),
            requests: FxHashMap::default(),
            next_inst: 0,
            next_req: 0,
            metrics: RunMetrics::new(),
            workload: None,
            gen_deadline: SimTime::ZERO,
            input_gen: None,
            measure_from: SimTime::ZERO,
            closed_loop: false,
        }
    }

    /// Pre-warms containers for every function on every node.
    pub fn prewarm(&mut self) {
        let funcs: Vec<FuncId> = self.app.registry.iter().map(|(id, _)| id).collect();
        // §IV: the paper assumes function start-up overheads have been
        // removed by prior cold-start work, so the warm pool must cover
        // the offered concurrency even under speculative fan-out.
        self.cluster.prewarm_all(funcs, 64);
    }

    /// The application under test.
    pub fn app(&self) -> &AppSpec {
        &self.app
    }

    /// The branch predictor (for hit-rate reporting).
    pub fn predictor(&self) -> &BranchPredictor {
        &self.predictor
    }

    /// The memoization tables (for hit-rate and size reporting).
    pub fn memos(&self) -> &MemoTables {
        &self.memos
    }

    /// The stall list (for squash-minimization statistics).
    pub fn stall_list(&self) -> &StallList {
        &self.stall_list
    }

    /// Arms deterministic fault injection with the given plan and
    /// retry/backoff policy. The injector draws from a dedicated RNG
    /// stream derived from the engine seed, so enabling faults never
    /// perturbs workload randomness — and [`FaultPlan::none`] leaves the
    /// simulation bit-identical to a fault-free engine.
    pub fn enable_faults(&mut self, plan: FaultPlan, retry: RetryPolicy) {
        self.faults = FaultInjector::new(plan, self.seed);
        self.retry = retry;
    }

    /// The fault injector (per-site injection counts for reporting).
    pub fn fault_injector(&self) -> &FaultInjector {
        &self.faults
    }

    /// Installs a flight recorder. Pass [`Tracer::recording`] for event
    /// capture alone, or [`Tracer::with_invariants`] to also validate the
    /// engine's invariants online and at every run-driver end. Install it
    /// before the runs it should cover: the conservation check windows
    /// start here.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        let now = self.sim.now();
        self.busy_snapshot = self.cluster.busy_core_time_total(now);
        self.attributed_base = (
            self.metrics.useful_core_time,
            self.metrics.squashed_core_time,
        );
        self.kill_busy_base = self.squash_kill_busy;
        self.tracer = tracer;
    }

    /// The installed flight recorder (event inspection, violation reports,
    /// and Chrome-trace JSON export).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Takes the flight recorder out of the engine, leaving a disabled one.
    pub fn take_tracer(&mut self) -> Tracer {
        std::mem::take(&mut self.tracer)
    }

    /// Installs a time-series metrics registry (pass
    /// [`MetricsRegistry::recording`]). The engine then maintains
    /// counters and samples occupancy gauges after every handled event.
    /// Sampling only reads engine state — it never draws from the RNG or
    /// schedules events — so an enabled registry leaves [`RunMetrics`]
    /// bit-identical to a same-seed run without one.
    pub fn set_registry(&mut self, registry: MetricsRegistry) {
        self.registry = registry;
    }

    /// The installed metrics registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Takes the metrics registry out of the engine, leaving a disabled one.
    pub fn take_registry(&mut self) -> MetricsRegistry {
        std::mem::take(&mut self.registry)
    }

    /// Samples every occupancy gauge at the current sim-time. Called after
    /// each handled event; one branch when the registry is disabled. The
    /// registry collapses consecutive duplicate values, so steady states
    /// cost one stored sample regardless of event volume.
    fn sample_gauges(&mut self) {
        if !self.registry.enabled() {
            return;
        }
        let now = self.sim.now();
        self.registry.sample(
            now,
            "specfaas_warm_pool_size",
            self.cluster.warm_pool_total(),
        );
        for (i, busy, depth) in self.cluster.node_gauges(now).collect::<Vec<_>>() {
            let label = i.to_string();
            self.registry
                .sample_labeled(now, "specfaas_busy_cores", "node", &label, busy);
            self.registry.sample_labeled(
                now,
                "specfaas_controller_queue_depth",
                "node",
                &label,
                depth as u64,
            );
        }
        self.spec_live.retain(|id| self.instances.contains_key(id));
        self.registry.sample(
            now,
            "specfaas_inflight_spec_slots",
            self.spec_live.len() as u64,
        );
        self.registry.sample(
            now,
            "specfaas_memo_entries",
            self.memos.total_entries() as u64,
        );
        while self.kv_pending.peek().is_some_and(|Reverse(t)| *t <= now) {
            self.kv_pending.pop();
        }
        self.registry.sample(
            now,
            "specfaas_outstanding_kv_ops",
            self.kv_pending.len() as u64,
        );
    }

    /// Charges `amount` to the Table-IV squashed-CPU ledger and mirrors
    /// the charge into the flight recorder ([`TraceEventKind::SquashCharge`])
    /// and registry, so post-hoc attribution reconciles exactly with
    /// [`RunMetrics::squashed_core_time`]. Zero-amount charges are
    /// ledger no-ops and emit nothing.
    fn charge_squashed(
        &mut self,
        req: RequestId,
        func: FuncId,
        site: &'static str,
        cascade: u32,
        amount: SimDuration,
    ) {
        if amount == SimDuration::ZERO {
            return;
        }
        self.metrics.squashed_core_time += amount;
        if self.tracer.enabled() {
            let now = self.sim.now();
            self.tracer.emit(
                now,
                TraceEventKind::SquashCharge {
                    req: req.0,
                    func: func.0,
                    site,
                    cascade,
                    amount,
                },
            );
        }
        self.registry
            .inc_by("specfaas_squashed_core_us_total", amount.as_micros());
    }

    /// End-of-driver invariant validation: every execution reached a
    /// terminal state and the core time the engine attributed (useful +
    /// squashed) exactly equals the cluster's integrated busy core-time
    /// over the same window. Callers take the metrics right after.
    fn trace_end_of_run(&mut self) {
        if !self.tracer.checking() {
            return;
        }
        let now = self.sim.now();
        let busy = self.cluster.busy_core_time_total(now);
        let (base_u, base_s) = self.attributed_base;
        self.tracer.check_end_of_run(
            self.instances.len(),
            self.metrics.useful_core_time - base_u,
            self.metrics.squashed_core_time - base_s
                + (self.squash_kill_busy - self.kill_busy_base),
            busy - self.busy_snapshot,
        );
        self.busy_snapshot = busy;
        self.kill_busy_base = self.squash_kill_busy;
        // The driver resets the metrics (mem::take) right after this.
        self.attributed_base = (SimDuration::ZERO, SimDuration::ZERO);
    }

    // ------------------------------------------------------------------
    // Request lifecycle
    // ------------------------------------------------------------------

    fn submit_request(&mut self, input: Value) -> RequestId {
        let id = RequestId(self.next_req);
        self.next_req += 1;
        let ctrl = self.cluster.pick_controller();
        let now = self.sim.now();
        let mut req = Req {
            arrived: now,
            ctrl,
            measured: now >= self.measure_from,
            pipeline: Pipeline::new(),
            buffer: DataBuffer::new(),
            slot_inst: FxHashMap::default(),
            call_state: FxHashMap::default(),
            waiting_callers: FxHashMap::default(),
            waiting_args: FxHashMap::default(),
            stalled_reads: Vec::new(),
            deferred_http: FxHashMap::default(),
            extended: FxHashSet::default(),
            slot_cpu: FxHashMap::default(),
            fork_joins: FxHashMap::default(),
            call_records: FxHashMap::default(),
            committing: None,
            attempts: FxHashMap::default(),
            retry_hold: FxHashSet::default(),
            learned: Vec::new(),
            committed_sequence: Vec::new(),
            functions_run: 0,
            functions_squashed: 0,
            end_committed: false,
            completed: false,
        };
        let start = self.seqtable.start();
        let func = self.seqtable.func_at(start);
        let slot =
            req.pipeline
                .push_back(func, SlotRole::Entry { entry: start }, PathHistory::start());
        {
            let s = req.pipeline.slot_mut(slot).expect("fresh slot");
            s.input = Some(input);
            s.non_speculative = self.app.registry.spec(func).annotations.non_speculative;
        }
        self.requests.insert(id, req);
        self.metrics.submitted += 1;
        self.registry.inc("specfaas_requests_submitted_total");
        if self.tracer.enabled() {
            self.tracer
                .emit(now, TraceEventKind::RequestArrival { req: id.0 });
        }
        // Predict the start function's output so extension can speculate
        // past it immediately.
        self.refresh_prediction(id, slot);
        self.pump(id);
        id
    }

    // ------------------------------------------------------------------
    // The pump: extend speculation, launch ready slots, try commits
    // ------------------------------------------------------------------

    fn pump(&mut self, req_id: RequestId) {
        if !self.requests.contains_key(&req_id) {
            return;
        }
        self.extend(req_id);
        self.launch_ready(req_id);
        self.release_deferred_http(req_id);
        self.try_commit(req_id);
        self.check_complete(req_id);
    }

    /// Fires the response once the workflow end has committed and no
    /// slots remain in flight (checked after every transition — slots can
    /// leave the pipeline outside the commit path, e.g. orphaned-callee
    /// cleanup).
    fn check_complete(&mut self, req_id: RequestId) {
        let Some(req) = self.requests.get_mut(&req_id) else {
            return;
        };
        if req.end_committed && req.pipeline.is_empty() && !req.completed {
            req.completed = true;
            self.sim
                .schedule_in(self.model.response_return, Ev::Complete(req_id));
        }
    }

    /// The last slot of `anchor`'s descendant block (the anchor itself or
    /// its最later callee-descendants), after which a program-order
    /// successor belongs.
    fn block_end(req: &Req, anchor: SlotId) -> SlotId {
        let mut block: FxHashSet<SlotId> = FxHashSet::default();
        block.insert(anchor);
        let mut last = anchor;
        let order: Vec<SlotId> = req.pipeline.iter_order().collect();
        let start = req.pipeline.position(anchor).expect("anchor live");
        for &s in &order[start + 1..] {
            let slot = req.pipeline.slot(s).expect("slot live");
            match slot.role {
                SlotRole::Callee { caller, .. } if block.contains(&caller) => {
                    block.insert(s);
                    last = s;
                }
                _ => break,
            }
        }
        last
    }

    /// Creates program-order successors for every unextended entry slot
    /// whose successor payload is (actually or speculatively) known.
    fn extend(&mut self, req_id: RequestId) {
        let depth = self.config.effective_depth(self.cluster.occupancy());
        loop {
            let Some(req) = self.requests.get(&req_id) else {
                return;
            };
            if req.pipeline.len() >= depth
                || req.pipeline.total_created() as usize >= self.config.max_slots_per_request
            {
                return;
            }
            // Find the first unextended entry slot (program order).
            let candidate = req
                .pipeline
                .iter_order()
                .find(|s| {
                    !req.extended.contains(s)
                        && matches!(
                            req.pipeline.slot(*s).expect("live").role,
                            SlotRole::Entry { .. }
                        )
                })
                .map(|s| {
                    let slot = req.pipeline.slot(s).expect("live");
                    let SlotRole::Entry { entry } = slot.role else {
                        unreachable!()
                    };
                    (s, entry)
                });
            let Some((slot_id, entry)) = candidate else {
                return;
            };
            if !self.extend_one(req_id, slot_id, entry) {
                return;
            }
        }
    }

    /// Attempts to create the successor of one entry slot. Returns true
    /// if extension made progress (successor created or slot marked
    /// terminally extended).
    fn extend_one(&mut self, req_id: RequestId, slot_id: SlotId, entry: usize) -> bool {
        let kind = self.seqtable.kind_at(entry).clone();
        let req = self.requests.get(&req_id).expect("live request");
        let slot = req.pipeline.slot(slot_id).expect("live slot");
        let completed = slot.state == SlotState::Completed;
        let slot_input = slot.input.clone();
        let slot_output = slot.output.clone();
        let slot_path = slot.path;
        let slot_func = slot.func;
        let slot_input_spec = slot.input_speculative;
        let slot_pred_out = slot.predicted_output.clone();

        let (next_entry, payload, payload_spec, predicted_dir) = match kind {
            EntryKind::Simple { next } => {
                let Some(n) = next else {
                    self.mark_extended(req_id, slot_id);
                    return true;
                };
                // Join entries are speculation barriers: handled at commit.
                if self.seqtable.compiled().entries[n].join_arity > 1 {
                    self.mark_extended(req_id, slot_id);
                    return true;
                }
                if completed {
                    (n, slot_output.expect("completed has output"), false, None)
                } else if self.config.memoization {
                    match slot_pred_out {
                        Some(p) => (n, p, true, None),
                        None => return false, // stuck until completion
                    }
                } else {
                    return false;
                }
            }
            EntryKind::Branch {
                ref field,
                taken,
                not_taken,
            } => {
                let outcome = if completed {
                    Some(Self::branch_outcome(
                        slot_output.as_ref().expect("completed"),
                        field.as_deref(),
                    ))
                } else if !self.config.branch_prediction {
                    None
                } else {
                    self.predict_branch(entry, slot_path, slot_func, slot_input.as_ref())
                };
                let Some(dir) = outcome else { return false };
                let target = if dir { taken } else { not_taken };
                // Record the prediction on the branch slot (for later
                // validation) when it was actually a prediction.
                if !completed {
                    let req = self.requests.get_mut(&req_id).expect("live");
                    req.pipeline
                        .slot_mut(slot_id)
                        .expect("live")
                        .predicted_taken = Some(dir);
                    self.registry.inc("specfaas_branch_predictions_total");
                    if self.tracer.enabled() {
                        let now = self.sim.now();
                        self.tracer.emit(
                            now,
                            TraceEventKind::BranchPredict {
                                req: req_id.0,
                                taken: dir,
                            },
                        );
                    }
                }
                let Some(n) = target else {
                    // Predicted end of workflow: nothing to launch until
                    // the branch resolves.
                    self.mark_extended(req_id, slot_id);
                    return true;
                };
                if self.seqtable.compiled().entries[n].join_arity > 1 {
                    self.mark_extended(req_id, slot_id);
                    return true;
                }
                // Branch functions route, passing their input through.
                let payload = slot_input.clone().expect("slot has input");
                (
                    n,
                    payload,
                    slot_input_spec || !completed,
                    (!completed).then_some(dir),
                )
            }
            EntryKind::Fork { .. } => {
                // Conservative: parallel fan-out happens at commit.
                self.mark_extended(req_id, slot_id);
                return true;
            }
        };
        let _ = predicted_dir;

        // Create the successor slot after this slot's descendant block.
        let req = self.requests.get_mut(&req_id).expect("live request");
        let anchor = Self::block_end(req, slot_id);
        let func = self.seqtable.func_at(next_entry);
        let new_path = slot_path.extend(slot_func.0);
        let new_id = req.pipeline.insert_after(
            anchor,
            func,
            SlotRole::Entry { entry: next_entry },
            new_path,
        );
        let annotations = self.app.registry.spec(func).annotations;
        let pred_iter = req
            .pipeline
            .slot(slot_id)
            .map(|p| p.iteration + 1)
            .unwrap_or(0);
        {
            let s = req.pipeline.slot_mut(new_id).expect("fresh slot");
            s.input = Some(payload);
            s.input_speculative = payload_spec;
            s.non_speculative = annotations.non_speculative;
            if let SlotRole::Entry { entry: e } = s.role {
                if e <= entry {
                    s.iteration = pred_iter;
                }
            }
        }
        req.extended.insert(slot_id);
        // Memo-predict the new slot's own output so extension can continue.
        self.refresh_prediction(req_id, new_id);
        true
    }

    fn mark_extended(&mut self, req_id: RequestId, slot_id: SlotId) {
        self.requests
            .get_mut(&req_id)
            .expect("live")
            .extended
            .insert(slot_id);
    }

    /// Looks up the memoization table for a slot's input and stores the
    /// predicted output on the slot.
    fn refresh_prediction(&mut self, req_id: RequestId, slot_id: SlotId) {
        if !self.config.memoization {
            return;
        }
        let req = self.requests.get_mut(&req_id).expect("live");
        let Some(slot) = req.pipeline.slot_mut(slot_id) else {
            return;
        };
        let Some(input) = slot.input.clone() else {
            return;
        };
        let func = slot.func.0;
        let hit = if let Some(entry) = self.memos.table_mut(func).lookup(&input) {
            slot.predicted_output = Some(entry.output.clone());
            true
        } else {
            false
        };
        if hit {
            self.registry.inc("specfaas_memo_hits_total");
            if self.tracer.enabled() {
                let now = self.sim.now();
                self.tracer.emit(
                    now,
                    TraceEventKind::MemoHit {
                        req: req_id.0,
                        func,
                    },
                );
            }
        }
    }

    fn branch_outcome(output: &Value, field: Option<&str>) -> bool {
        match field {
            Some(f) => output.get_field(f).map(Value::truthy).unwrap_or(false),
            None => output.truthy(),
        }
    }

    /// Predicts an unresolved branch, honouring forced-accuracy mode.
    fn predict_branch(
        &mut self,
        entry: usize,
        path: PathHistory,
        func: FuncId,
        input: Option<&Value>,
    ) -> Option<bool> {
        let site = BranchSite::Entry(entry);
        let pred = if let Some(acc) = self.config.forced_branch_accuracy {
            let input = input?;
            let actual = self.oracle_outcome(entry, func, input)?;
            self.predictor
                .predict(site, path, Some((actual, acc, &mut self.rng)))
        } else {
            self.predictor.predict(site, path, None)
        };
        match pred {
            Prediction::Taken => Some(true),
            Prediction::NotTaken => Some(false),
            Prediction::NoSpeculation => None,
        }
    }

    /// Omniscient evaluation of a branch condition function (used only by
    /// the forced-accuracy oracle of Fig. 14): runs the cond program
    /// functionally against a snapshot view of committed storage.
    fn oracle_outcome(&mut self, entry: usize, func: FuncId, input: &Value) -> Option<bool> {
        let program: Program = self.app.registry.spec(func).program.clone();
        let mut scratch: FxHashMap<String, Value> = FxHashMap::default();
        // Seed reads lazily by pre-copying every key the store holds is
        // wasteful; instead run with an empty scratch and fall back to
        // committed values by pre-populating on demand is not possible
        // through the closure API, so copy the (small) store.
        for (k, v) in self.kv.iter() {
            scratch.insert(k.to_owned(), v.clone());
        }
        let mut rng = self.rng.split();
        let out = Interp::run_functional(
            &program,
            input.clone(),
            &mut scratch,
            &mut |_, _, _, _| Ok(Value::Null),
            &mut rng,
        )
        .ok()?;
        let field = match self.seqtable.kind_at(entry) {
            EntryKind::Branch { field, .. } => field.clone(),
            _ => None,
        };
        Some(Self::branch_outcome(&out, field.as_deref()))
    }

    /// Launches every launchable slot.
    fn launch_ready(&mut self, req_id: RequestId) {
        let Some(req) = self.requests.get(&req_id) else {
            return;
        };
        let ready: Vec<SlotId> = req
            .pipeline
            .iter_order()
            .filter(|s| {
                let slot = req.pipeline.slot(*s).expect("live");
                slot.state == SlotState::Created
                    && slot.input.is_some()
                    && (!slot.non_speculative || req.pipeline.is_head(*s))
                    && !req.retry_hold.contains(s)
            })
            .collect();
        for s in ready {
            self.launch_slot(req_id, s);
        }
    }

    fn launch_slot(&mut self, req_id: RequestId, slot_id: SlotId) {
        let now = self.sim.now();
        // Slot-drop fault: the controller loses a *speculative* launch.
        // The launch is re-attempted after a redispatch delay — it must
        // not wait for the slot to reach the pipeline head, because an
        // implicit-workflow callee sits *behind* callers that block on
        // it (waiting for head would deadlock the request). Head
        // launches are never dropped, so re-attempts always terminate.
        if self.faults.enabled() {
            let head = self
                .requests
                .get(&req_id)
                .map(|r| r.pipeline.is_head(slot_id))
                .unwrap_or(true);
            if !head && self.faults.roll(FaultSite::SlotDrop, now) {
                self.metrics.faults.injected += 1;
                self.metrics.faults.slot_drops += 1;
                self.registry
                    .inc_labeled("specfaas_faults_injected_total", "site", "slot_drop");
                if self.tracer.enabled() {
                    let func = self
                        .requests
                        .get(&req_id)
                        .and_then(|r| r.pipeline.slot(slot_id))
                        .map(|s| s.func.0)
                        .unwrap_or(u32::MAX);
                    self.tracer.emit(
                        now,
                        TraceEventKind::FaultInjected {
                            req: req_id.0,
                            site: "slot_drop",
                        },
                    );
                    self.tracer.emit(
                        now,
                        TraceEventKind::RetryBackoff {
                            req: req_id.0,
                            func,
                            attempt: 1,
                            backoff: self.retry.backoff(1),
                        },
                    );
                }
                self.sim
                    .schedule_in(self.retry.backoff(1), Ev::RetrySlot(req_id, slot_id));
                return;
            }
        }
        let (ctrl, func, input) = {
            let req = self.requests.get_mut(&req_id).expect("live");
            let slot = req.pipeline.slot_mut(slot_id).expect("live");
            slot.state = SlotState::Running;
            (req.ctrl, slot.func, slot.input.clone().expect("input"))
        };
        let annotations = self.app.registry.spec(func).annotations;
        let speculative = self
            .requests
            .get(&req_id)
            .map(|r| !r.pipeline.is_head(slot_id))
            .unwrap_or(false);
        if self.tracer.enabled() {
            self.tracer.emit(
                now,
                TraceEventKind::SlotLaunch {
                    req: req_id.0,
                    slot: slot_id.0,
                    func: func.0,
                    speculative,
                },
            );
        }

        // Pure-function skip (§V-B): on a memoization hit, skip execution
        // entirely. Disabled by default to match the paper's conservative
        // evaluation.
        if self.config.pure_function_skip && annotations.pure_function {
            if let Some(entry) = self.memos.table_mut(func.0).lookup(&input) {
                let output = entry.output.clone();
                let req = self.requests.get_mut(&req_id).expect("live");
                let slot = req.pipeline.slot_mut(slot_id).expect("live");
                slot.state = SlotState::Completed;
                slot.output = Some(output);
                req.functions_run += 1;
                self.metrics.functions_started += 1;
                self.registry.inc("specfaas_functions_started_total");
                self.registry.inc("specfaas_memo_hits_total");
                if self.tracer.enabled() {
                    self.tracer.emit(
                        now,
                        TraceEventKind::MemoHit {
                            req: req_id.0,
                            func: func.0,
                        },
                    );
                }
                self.on_slot_completed(req_id, slot_id);
                return;
            }
        }

        // Sequence-table fast path: no conductor, just a cheap controller
        // launch operation plus the fixed wire cost.
        let delay = self.model.platform_fixed
            + self
                .cluster
                .controller_delay(ctrl, now, self.model.spec_launch_service);
        let id = InstanceId(self.next_inst);
        self.next_inst += 1;
        let node = self.cluster.pick_node();
        let program = self.app.registry.spec(func).program.clone();
        let child_rng = self.rng.split();
        let mut inst = FnInstance::new(id, func, node, &program, input, child_rng, now);
        inst.breakdown.platform = delay;
        self.instances.insert(id, inst);
        self.meta.insert(
            id,
            InstMeta {
                req: req_id,
                slot: slot_id,
                container_acquired: false,
            },
        );
        let req = self.requests.get_mut(&req_id).expect("live");
        req.slot_inst.insert(slot_id, id);
        req.functions_run += 1;
        self.metrics.functions_started += 1;
        self.registry.inc("specfaas_functions_started_total");
        if speculative && self.registry.enabled() {
            self.spec_live.insert(id);
        }
        self.sim.schedule_in(delay, Ev::Launch(id));
        // Invocation watchdog: the only recovery path for a hung handler.
        if let Some(t) = self.retry.invocation_timeout {
            self.sim.schedule_in(t, Ev::Timeout(id));
        }

        // Implicit-workflow callee prefetch (§V-D): launching f with a
        // memoized input row lets us launch its callees speculatively.
        self.prefetch_callees(req_id, slot_id);
    }

    /// Speculatively creates and launches the learned callees of a slot.
    fn prefetch_callees(&mut self, req_id: RequestId, caller_slot: SlotId) {
        if !self.config.branch_prediction || !self.config.memoization {
            // For implicit workflows the two mechanisms only work together
            // (§VIII-B).
            return;
        }
        let depth = self.config.effective_depth(self.cluster.occupancy());
        let (caller_func, caller_input, caller_path) = {
            let req = self.requests.get(&req_id).expect("live");
            let slot = req.pipeline.slot(caller_slot).expect("live");
            (slot.func, slot.input.clone(), slot.path)
        };
        let Some(input) = caller_input else { return };
        if !self.seqtable.knows_caller(caller_func) {
            return;
        }
        let Some(row) = self.memos.table(caller_func.0).peek(&input) else {
            return;
        };
        let callee_inputs = row.callee_inputs.clone();
        let edges: Vec<(usize, FuncId, f64)> = self
            .seqtable
            .callees_of(caller_func)
            .iter()
            .enumerate()
            .map(|(i, e)| (i, e.callee, self.seqtable.call_probability(caller_func, i)))
            .collect();

        let mut anchor = caller_slot;
        let mut created = Vec::new();
        for (site, callee, prob) in edges {
            if prob < 0.5 + self.config.branch_confidence_window {
                break; // stop prefetching at the first unlikely call
            }
            let Some(args) = callee_inputs.get(site).cloned() else {
                break;
            };
            let req = self.requests.get_mut(&req_id).expect("live");
            if req.pipeline.len() >= depth {
                break;
            }
            let path = caller_path.extend(caller_func.0);
            let id = req.pipeline.insert_after(
                anchor,
                callee,
                SlotRole::Callee {
                    caller: caller_slot,
                    site,
                },
                path,
            );
            {
                let s = req.pipeline.slot_mut(id).expect("fresh");
                s.input = Some(args);
                s.input_speculative = true;
                s.non_speculative = self.app.registry.spec(callee).annotations.non_speculative;
            }
            req.call_state
                .entry(caller_slot)
                .or_default()
                .prefetched
                .push(id);
            anchor = Self::block_end(req, id);
            created.push(id);
        }
        for id in created {
            // Launch unless annotation defers it.
            let launchable = {
                let req = self.requests.get(&req_id).expect("live");
                let slot = req.pipeline.slot(id).expect("live");
                slot.state == SlotState::Created
                    && (!slot.non_speculative || req.pipeline.is_head(id))
            };
            if launchable {
                self.launch_slot(req_id, id); // recursively prefetches
            }
        }
    }

    // ------------------------------------------------------------------
    // Instance event handling
    // ------------------------------------------------------------------

    fn on_launch(&mut self, id: InstanceId) {
        if self.orphans.contains(&id) {
            // Lazily squashed before launch resolved — treat as normal
            // container acquisition so resources balance.
        }
        let Some(meta) = self.meta.get_mut(&id) else {
            return; // killed before launch
        };
        meta.container_acquired = true;
        let req_id = meta.req;
        let inst = self.instances.get_mut(&id).expect("live instance");
        let node = inst.node;
        let func = inst.func;
        match self.cluster.acquire_container(node, func, &self.model) {
            ContainerAcquire::Warm => {
                self.registry.inc("specfaas_warm_starts_total");
                if self.tracer.enabled() {
                    let now = self.sim.now();
                    self.tracer.emit(
                        now,
                        TraceEventKind::ContainerAcquire {
                            req: req_id.0,
                            func: func.0,
                            node: node.0 as u32,
                            cold: false,
                        },
                    );
                }
                self.try_start(id)
            }
            ContainerAcquire::Cold(d) => {
                self.registry.inc("specfaas_cold_starts_total");
                let inst = self.instances.get_mut(&id).expect("live");
                inst.breakdown.container_creation = self.model.container_creation;
                inst.breakdown.runtime_setup = self.model.runtime_setup;
                inst.state = InstanceState::ColdStarting;
                if self.tracer.enabled() {
                    let now = self.sim.now();
                    self.tracer.emit(
                        now,
                        TraceEventKind::ContainerAcquire {
                            req: req_id.0,
                            func: func.0,
                            node: node.0 as u32,
                            cold: true,
                        },
                    );
                    // Fig. 3 cold-start spans: container creation, then
                    // runtime setup for whatever remains of the delay.
                    let cc = if self.model.container_creation < d {
                        self.model.container_creation
                    } else {
                        d
                    };
                    self.tracer.emit(
                        now,
                        TraceEventKind::Span {
                            req: req_id.0,
                            func: func.0,
                            node: node.0 as u32,
                            phase: Phase::ContainerCreation,
                            end: now + cc,
                        },
                    );
                    if cc < d {
                        self.tracer.emit(
                            now + cc,
                            TraceEventKind::Span {
                                req: req_id.0,
                                func: func.0,
                                node: node.0 as u32,
                                phase: Phase::RuntimeSetup,
                                end: now + d,
                            },
                        );
                    }
                }
                self.sim.schedule_in(d, Ev::ContainerReady(id));
            }
        }
    }

    fn try_start(&mut self, id: InstanceId) {
        if !self.instances.contains_key(&id) {
            return;
        }
        let now = self.sim.now();
        let inst = self.instances.get_mut(&id).expect("live");
        let node = inst.node;
        if self.cluster.node_mut(node).cores.try_acquire(now) {
            inst.state = InstanceState::Running;
            inst.started_at = Some(now);
            self.sim.schedule_now(Ev::Resume(id, None));
        } else {
            inst.state = InstanceState::WaitingCore;
            self.cluster.node_mut(node).cores.enqueue(id);
        }
    }

    fn on_resume(&mut self, id: InstanceId, resume: Option<Value>) {
        if !self.instances.contains_key(&id) {
            return; // killed
        }
        if self.orphans.contains(&id) {
            self.orphan_step(id, resume);
            return;
        }
        let Some(meta) = self.meta.get(&id) else {
            return; // squashed; awaiting SquashRelease
        };
        let (req_id, slot_id) = (meta.req, meta.slot);
        // A blocked instance must re-acquire an execution slot first.
        let now = self.sim.now();
        if self
            .instances
            .get(&id)
            .map(|i| i.state == InstanceState::Blocked)
            .unwrap_or(false)
        {
            let inst = self.instances.get_mut(&id).expect("live");
            let node = inst.node;
            if self.cluster.node_mut(node).cores.try_acquire(now) {
                let inst = self.instances.get_mut(&id).expect("live");
                inst.state = InstanceState::Running;
                inst.started_at = Some(now);
            } else {
                let inst = self.instances.get_mut(&id).expect("live");
                inst.pending_resume = Some(resume);
                inst.state = InstanceState::WaitingCore;
                self.cluster.node_mut(node).cores.enqueue(id);
                return;
            }
        }
        // Fault injection at the step boundary: the handler's container
        // crashes, or the handler wedges (hang) and stops making progress.
        if self.faults.enabled() {
            if self.faults.roll(FaultSite::ContainerCrash, now) {
                self.metrics.faults.injected += 1;
                self.metrics.faults.crashes += 1;
                self.registry.inc_labeled(
                    "specfaas_faults_injected_total",
                    "site",
                    "container_crash",
                );
                if self.tracer.enabled() {
                    self.tracer.emit(
                        now,
                        TraceEventKind::FaultInjected {
                            req: req_id.0,
                            site: "container_crash",
                        },
                    );
                }
                self.slot_fault(req_id, slot_id);
                return;
            }
            if self.faults.roll(FaultSite::Hang, now) {
                self.metrics.faults.injected += 1;
                self.metrics.faults.hangs += 1;
                self.registry
                    .inc_labeled("specfaas_faults_injected_total", "site", "hang");
                if self.tracer.enabled() {
                    self.tracer.emit(
                        now,
                        TraceEventKind::FaultInjected {
                            req: req_id.0,
                            site: "hang",
                        },
                    );
                }
                // The wedged handler keeps its core and container but
                // schedules nothing further; only the invocation
                // watchdog (if configured) can recover it.
                return;
            }
        }
        let mut inst = self.instances.remove(&id).expect("live");
        let effect = match inst.step(resume) {
            Ok(e) => e,
            Err(err) => {
                let out = Value::map([("error", Value::str(err.to_string()))]);
                self.instances.insert(id, inst);
                self.complete_slot(req_id, slot_id, id, out);
                return;
            }
        };
        match effect {
            Effect::Compute(d) => {
                inst.breakdown.execution += d;
                self.instances.insert(id, inst);
                self.sim.schedule_in(d, Ev::Resume(id, None));
            }
            Effect::Get { key } => {
                self.instances.insert(id, inst);
                self.handle_get(req_id, slot_id, id, key, 1);
            }
            Effect::Set { key, value } => {
                self.instances.insert(id, inst);
                self.handle_set(req_id, slot_id, id, key, value, 1);
            }
            Effect::Http { .. } => {
                self.instances.insert(id, inst);
                let req = self.requests.get(&req_id).expect("live");
                if Self::effectively_head(req, slot_id) {
                    self.sim
                        .schedule_in(self.model.http_latency, Ev::Resume(id, None));
                } else {
                    // Deferred until the function turns non-speculative
                    // (§VI, "Side-effect Handling").
                    let req = self.requests.get_mut(&req_id).expect("live");
                    req.deferred_http.insert(slot_id, id);
                    self.block_instance(id);
                }
            }
            Effect::FileWrite { name, data } => {
                inst.files.insert(name, data);
                self.instances.insert(id, inst);
                self.sim.schedule_now(Ev::Resume(id, None));
            }
            Effect::FileRead { name } => {
                let v = inst.files.get(&name).cloned().unwrap_or(Value::Null);
                self.instances.insert(id, inst);
                self.sim.schedule_now(Ev::Resume(id, Some(v)));
            }
            Effect::Call { func, args } => {
                self.instances.insert(id, inst);
                self.handle_call(req_id, slot_id, id, &func, args);
            }
            Effect::Done(out) => {
                self.instances.insert(id, inst);
                self.complete_slot(req_id, slot_id, id, out);
            }
        }
    }

    /// Releases the instance's execution slot while it blocks (waiting
    /// on a callee, a stalled read, or a deferred side effect). A blocked
    /// handler process is descheduled by the OS; its container stays
    /// allocated.
    fn block_instance(&mut self, id: InstanceId) {
        let now = self.sim.now();
        let Some(inst) = self.instances.get_mut(&id) else {
            return;
        };
        if inst.state != InstanceState::Running {
            return;
        }
        if let Some(start) = inst.started_at.take() {
            inst.accumulated_core += now - start;
            if self.tracer.enabled() {
                if let Some(m) = self.meta.get(&id) {
                    self.tracer.emit(
                        start,
                        TraceEventKind::Span {
                            req: m.req.0,
                            func: inst.func.0,
                            node: inst.node.0 as u32,
                            phase: Phase::Execution,
                            end: now,
                        },
                    );
                }
            }
        }
        inst.state = InstanceState::Blocked;
        let node = inst.node;
        if let Some(next) = self.cluster.node_mut(node).cores.release(now) {
            self.grant_core(next, now);
        }
    }

    /// Hands a freed slot to a queued instance and starts/resumes it.
    fn grant_core(&mut self, next: InstanceId, now: SimTime) {
        if let Some(w) = self.instances.get_mut(&next) {
            w.state = InstanceState::Running;
            w.started_at = Some(now);
            let resume = w.pending_resume.take().unwrap_or(None);
            self.sim.schedule_now(Ev::Resume(next, resume));
        }
    }

    /// Rolls for a transient KV fault on behalf of `id`. Returns true if
    /// a fault was injected and handled (retry scheduled or escalated);
    /// the storage operation must then not proceed.
    fn kv_fault(
        &mut self,
        req_id: RequestId,
        slot_id: SlotId,
        id: InstanceId,
        op: KvOp,
        attempt: u32,
    ) -> bool {
        let site = match &op {
            KvOp::Get { .. } => FaultSite::KvGet,
            KvOp::Set { .. } => FaultSite::KvSet,
        };
        let now = self.sim.now();
        if !self.faults.enabled() || !self.faults.roll(site, now) {
            return false;
        }
        self.metrics.faults.injected += 1;
        self.metrics.faults.kv_errors += 1;
        let fault_site = match &op {
            KvOp::Get { .. } => "kv_get",
            KvOp::Set { .. } => "kv_set",
        };
        self.registry
            .inc_labeled("specfaas_faults_injected_total", "site", fault_site);
        if self.tracer.enabled() {
            self.tracer.emit(
                now,
                TraceEventKind::FaultInjected {
                    req: req_id.0,
                    site: fault_site,
                },
            );
        }
        if attempt >= self.retry.max_attempts {
            // Storage retries exhausted: the whole execution faults.
            self.slot_fault(req_id, slot_id);
            return true;
        }
        let backoff = self.retry.backoff(attempt);
        if let Some(inst) = self.instances.get_mut(&id) {
            inst.breakdown.retry_backoff += backoff;
        }
        if self.tracer.enabled() {
            let func = self
                .instances
                .get(&id)
                .map(|i| i.func.0)
                .unwrap_or(u32::MAX);
            self.tracer.emit(
                now,
                TraceEventKind::RetryBackoff {
                    req: req_id.0,
                    func,
                    attempt: attempt + 1,
                    backoff,
                },
            );
        }
        self.metrics.faults.retried += 1;
        self.sim
            .schedule_in(backoff, Ev::KvRetry(id, op, attempt + 1));
        true
    }

    /// Storage read through the Data Buffer (§V-C).
    fn handle_get(
        &mut self,
        req_id: RequestId,
        slot_id: SlotId,
        id: InstanceId,
        key: String,
        attempt: u32,
    ) {
        if self.kv_fault(req_id, slot_id, id, KvOp::Get { key: key.clone() }, attempt) {
            return;
        }
        let lat = self.kv.latency().read + self.model.data_buffer_hop;
        let Some(req) = self.requests.get_mut(&req_id) else {
            return;
        };
        // The slot may have been squashed away while this operation was
        // in flight (kill latency); reads from dying executions are void.
        let Some(slot) = req.pipeline.slot(slot_id) else {
            return;
        };
        let my_func = slot.func;

        // Stall-list check (§V-C): if this (producer, consumer, record)
        // has squashed before, stall instead of reading prematurely.
        if self.config.stall_optimization {
            let producers = self.stall_list.producers_for(my_func, &key);
            if !producers.is_empty() {
                let my_pos = req.pipeline.position(slot_id).expect("live");
                let pending_producer = req.pipeline.iter_order().take(my_pos).find(|p| {
                    let s = req.pipeline.slot(*p).expect("live");
                    producers.contains(&s.func)
                        && s.state != SlotState::Completed
                        && !req.buffer.has_write(*p, &key)
                });
                if let Some(producer) = pending_producer {
                    req.stalled_reads.push(StalledRead {
                        slot: slot_id,
                        inst: id,
                        key,
                        producer,
                    });
                    self.stall_list.record_stall();
                    self.block_instance(id);
                    return;
                }
            }
        }
        let value = match req.buffer.read(slot_id, &key, &req.pipeline) {
            ReadResult::Forwarded(v) => v,
            ReadResult::Global => self.kv.get(&key).cloned().unwrap_or(Value::Null),
        };
        if let Some(inst) = self.instances.get_mut(&id) {
            inst.breakdown.execution += lat;
        }
        self.registry.inc("specfaas_kv_reads_total");
        if self.registry.enabled() {
            self.kv_pending.push(Reverse(self.sim.now() + lat));
        }
        self.sim.schedule_in(lat, Ev::Resume(id, Some(value)));
    }

    /// Storage write through the Data Buffer: buffered, with out-of-order
    /// RAW detection (§V-C).
    fn handle_set(
        &mut self,
        req_id: RequestId,
        slot_id: SlotId,
        id: InstanceId,
        key: String,
        value: Value,
        attempt: u32,
    ) {
        let op = KvOp::Set {
            key: key.clone(),
            value: value.clone(),
        };
        if self.kv_fault(req_id, slot_id, id, op, attempt) {
            return;
        }
        let lat = self.kv.latency().write + self.model.data_buffer_hop;
        let Some(req) = self.requests.get_mut(&req_id) else {
            return;
        };
        // Writes from squashed-in-flight executions are void (§V-E).
        let Some(slot) = req.pipeline.slot(slot_id) else {
            return;
        };
        let my_func = slot.func;
        let victims = req.buffer.write(slot_id, &key, value, &req.pipeline);

        // Remember the producer→consumer pairs that squash (stall list).
        if let Some(first) = victims.first() {
            let consumer_func = req.pipeline.slot(*first).map(|s| s.func);
            if let Some(cf) = consumer_func {
                self.stall_list.record_squash(my_func, cf, &key);
            }
            let first = *first;
            self.squash_from(req_id, first, SquashKind::Violation);
        }

        // Release any stalled reads waiting for this producer+key.
        self.release_stalls(req_id, Some((slot_id, key)));

        if let Some(inst) = self.instances.get_mut(&id) {
            inst.breakdown.execution += lat;
        }
        self.registry.inc("specfaas_kv_writes_total");
        if self.registry.enabled() {
            self.kv_pending.push(Reverse(self.sim.now() + lat));
        }
        self.sim.schedule_in(lat, Ev::Resume(id, None));
    }

    /// Re-resolves stalled reads whose producer wrote the record,
    /// completed, or disappeared.
    fn release_stalls(&mut self, req_id: RequestId, wrote: Option<(SlotId, String)>) {
        let Some(req) = self.requests.get_mut(&req_id) else {
            return;
        };
        let mut released = Vec::new();
        req.stalled_reads.retain(|sr| {
            let producer_live = req.pipeline.slot(sr.producer).is_some();
            let producer_done = req
                .pipeline
                .slot(sr.producer)
                .map(|s| s.state == SlotState::Completed)
                .unwrap_or(true);
            let produced = req.buffer.has_write(sr.producer, &sr.key)
                || wrote
                    .as_ref()
                    .map(|(p, k)| *p == sr.producer && *k == sr.key)
                    .unwrap_or(false);
            if !producer_live || producer_done || produced {
                released.push((sr.slot, sr.inst, sr.key.clone()));
                false
            } else {
                true
            }
        });
        for (slot, inst, key) in released {
            // Re-issue the read, now past the stall window.
            if self.instances.contains_key(&inst) {
                self.handle_get(req_id, slot, inst, key, 1);
            }
        }
    }

    /// Implicit-workflow call: match against prefetched callees or spawn
    /// on demand (§V-D).
    fn handle_call(
        &mut self,
        req_id: RequestId,
        caller_slot: SlotId,
        caller_inst: InstanceId,
        func_name: &str,
        args: Value,
    ) {
        let Some(callee_func) = self.app.registry.lookup(func_name) else {
            // Unknown callee: resolve as Null after an RPC hop.
            self.sim.schedule_in(
                self.model.transfer_fixed,
                Ev::Resume(caller_inst, Some(Value::Null)),
            );
            return;
        };
        let Some(req) = self.requests.get_mut(&req_id) else {
            return;
        };
        if req.pipeline.slot(caller_slot).is_none() {
            return; // caller squashed while the call was in flight
        }
        let cs = req.call_state.entry(caller_slot).or_default();
        let site = cs.cursor;
        cs.cursor += 1;

        // Drop leading prefetch entries whose slots were squashed away.
        while let Some(&h) = cs.prefetched.first() {
            if req.pipeline.slot(h).is_none() {
                cs.prefetched.remove(0);
            } else {
                break;
            }
        }
        // Is there a prefetched callee slot for this site?
        let prefetched = cs.prefetched.first().copied();
        if let Some(cslot) = prefetched {
            let matches = req
                .pipeline
                .slot(cslot)
                .map(|s| {
                    s.func == callee_func
                        && s.input.as_ref() == Some(&args)
                        && matches!(s.role, SlotRole::Callee { site: ps, .. } if ps == site)
                })
                .unwrap_or(false);
            if matches {
                let cs = req.call_state.get_mut(&caller_slot).expect("present");
                cs.prefetched.remove(0);
                let state = req.pipeline.slot(cslot).expect("live").state;
                if state == SlotState::Completed {
                    self.consume_callee(req_id, caller_slot, caller_inst, cslot);
                } else {
                    // Stall the caller until the callee completes (§V-D);
                    // the blocked caller yields its execution slot.
                    req.waiting_callers.insert(cslot, caller_slot);
                    req.waiting_args.insert(caller_slot, args);
                    self.block_instance(caller_inst);
                    // The callee may just have become the non-speculative
                    // execution point: release its deferred side effects.
                    self.release_deferred_http(req_id);
                }
                return;
            }
            // Mismatch: squash the wrong prefetch (and everything after).
            let cs = req.call_state.get_mut(&caller_slot).expect("present");
            cs.prefetched.remove(0);
            self.squash_from(req_id, cslot, SquashKind::WrongPath);
        }

        // Spawn the callee on demand (non-speculative input).
        let req = self.requests.get_mut(&req_id).expect("live");
        let caller_path = req.pipeline.slot(caller_slot).expect("live").path;
        let anchor = Self::block_end(req, caller_slot);
        let cslot = req.pipeline.insert_after(
            anchor,
            callee_func,
            SlotRole::Callee {
                caller: caller_slot,
                site,
            },
            caller_path,
        );
        {
            let s = req.pipeline.slot_mut(cslot).expect("fresh");
            s.input = Some(args.clone());
            s.non_speculative = self
                .app
                .registry
                .spec(callee_func)
                .annotations
                .non_speculative;
        }
        req.waiting_callers.insert(cslot, caller_slot);
        req.waiting_args.insert(caller_slot, args);
        let launchable = {
            let req = self.requests.get(&req_id).expect("live");
            let slot = req.pipeline.slot(cslot).expect("live");
            !slot.non_speculative || req.pipeline.is_head(cslot)
        };
        self.block_instance(caller_inst);
        if launchable {
            self.launch_slot(req_id, cslot);
        }
        self.release_deferred_http(req_id);
    }

    /// True when `slot` is non-speculative in the paper's sense: it is
    /// the pipeline head, or it is a callee whose entire caller chain is
    /// head-and-blocked-waiting on it (§V-D: the caller stalls at the
    /// call site, so the callee is the actual execution point).
    fn effectively_head(req: &Req, slot: SlotId) -> bool {
        let mut cur = slot;
        loop {
            if req.pipeline.is_head(cur) {
                return true;
            }
            let Some(s) = req.pipeline.slot(cur) else {
                return false;
            };
            match s.role {
                SlotRole::Callee { caller, .. }
                    if req.waiting_callers.get(&cur) == Some(&caller) =>
                {
                    cur = caller;
                }
                _ => return false,
            }
        }
    }

    /// The top-level entry slot a callee ultimately works for (walks the
    /// caller chain).
    fn entry_ancestor(req: &Req, slot: SlotId) -> Option<SlotId> {
        let mut cur = slot;
        loop {
            let s = req.pipeline.slot(cur)?;
            match s.role {
                SlotRole::Entry { .. } => return Some(cur),
                SlotRole::Callee { caller, .. } => cur = caller,
            }
        }
    }

    /// Resumes any deferred side effects whose slot has become
    /// effectively non-speculative.
    fn release_deferred_http(&mut self, req_id: RequestId) {
        let Some(req) = self.requests.get(&req_id) else {
            return;
        };
        let ready: Vec<(SlotId, InstanceId)> = req
            .deferred_http
            .iter()
            .filter(|(slot, _)| Self::effectively_head(req, **slot))
            .map(|(s, i)| (*s, *i))
            .collect();
        let req = self.requests.get_mut(&req_id).expect("live");
        for (slot, inst) in ready {
            req.deferred_http.remove(&slot);
            self.sim
                .schedule_in(self.model.http_latency, Ev::Resume(inst, None));
        }
    }

    /// Folds a completed callee into its caller: merge Data Buffer
    /// columns, record learning, remove the callee slot, resume the
    /// caller with the callee's output.
    fn consume_callee(
        &mut self,
        req_id: RequestId,
        caller_slot: SlotId,
        caller_inst: InstanceId,
        callee_slot: SlotId,
    ) {
        let req = self.requests.get_mut(&req_id).expect("live");
        req.buffer.merge(callee_slot, caller_slot);
        let callee = req.pipeline.remove(callee_slot);
        req.extended.remove(&callee_slot);
        req.waiting_callers.remove(&callee_slot);
        req.waiting_args.remove(&caller_slot);
        let output = callee.output.clone().expect("completed callee");
        req.committed_sequence.push(callee.func.0);
        // The caller's memo row records its *direct* calls only.
        if let Some(caller) = req.pipeline.slot_mut(caller_slot) {
            caller.learned_calls.push((
                callee.func,
                callee.input.clone().expect("callee input"),
                output.clone(),
            ));
        }
        // Bubble the callee's own observation (with its direct callee
        // list) to the owning entry slot for commit-time promotion.
        if let Some(entry) = Self::entry_ancestor(req, caller_slot) {
            req.call_records.entry(entry).or_default().push(CallRecord {
                func: callee.func,
                input: callee.input.clone().expect("callee input"),
                output: output.clone(),
                callee_funcs: callee.learned_calls.iter().map(|(f, _, _)| *f).collect(),
                callee_inputs: callee
                    .learned_calls
                    .iter()
                    .map(|(_, i, _)| i.clone())
                    .collect(),
            });
        }
        req.call_state.remove(&callee_slot);
        // Move callee CPU accounting into the caller's bucket.
        if let Some(t) = req.slot_cpu.remove(&callee_slot) {
            *req.slot_cpu.entry(caller_slot).or_insert(SimDuration::ZERO) += t;
        }
        self.sim.schedule_in(
            self.model.data_buffer_hop,
            Ev::Resume(caller_inst, Some(output)),
        );
    }

    // ------------------------------------------------------------------
    // Completion, validation, commit
    // ------------------------------------------------------------------

    fn complete_slot(&mut self, req_id: RequestId, slot_id: SlotId, id: InstanceId, output: Value) {
        let now = self.sim.now();
        // Release execution resources.
        let inst = self.instances.remove(&id).expect("live");
        self.meta.remove(&id);
        self.release_instance_resources(&inst, true, now);
        self.metrics.breakdowns.push(inst.breakdown);
        let core_time = inst.accumulated_core
            + inst
                .started_at
                .map(|s| now - s)
                .unwrap_or(SimDuration::ZERO);
        if self.tracer.enabled() {
            if let Some(s) = inst.started_at {
                self.tracer.emit(
                    s,
                    TraceEventKind::Span {
                        req: req_id.0,
                        func: inst.func.0,
                        node: inst.node.0 as u32,
                        phase: Phase::Execution,
                        end: now,
                    },
                );
            }
        }

        if !self.requests.contains_key(&req_id) {
            // Request already gone (defensive): the stint can no longer be
            // attributed to a slot, so count it as wasted work rather than
            // dropping it from the core-time conservation ledger.
            self.charge_squashed(req_id, inst.func, "late_completion", 0, core_time);
            return;
        }
        if self.requests[&req_id].pipeline.slot(slot_id).is_none() {
            // Slot squashed while its completion event was in flight.
            self.charge_squashed(req_id, inst.func, "late_completion", 0, core_time);
            return;
        }
        let req = self.requests.get_mut(&req_id).expect("live");
        req.slot_inst.remove(&slot_id);
        *req.slot_cpu.entry(slot_id).or_insert(SimDuration::ZERO) += core_time;
        {
            let slot = req.pipeline.slot_mut(slot_id).expect("live");
            slot.state = SlotState::Completed;
            slot.output = Some(output);
        }
        // Prefetched callees the caller never consumed (e.g. a
        // conditional call not taken this run) are wasted speculation:
        // squash them and their descendants.
        self.squash_unconsumed_callees(req_id, slot_id);
        self.on_slot_completed(req_id, slot_id);
    }

    /// Removes every still-live prefetched callee of a just-completed
    /// caller, together with their descendant blocks.
    fn squash_unconsumed_callees(&mut self, req_id: RequestId, caller: SlotId) {
        let leftovers: Vec<SlotId> = {
            let Some(req) = self.requests.get_mut(&req_id) else {
                return;
            };
            match req.call_state.remove(&caller) {
                Some(cs) => cs.prefetched,
                None => return,
            }
        };
        for head in leftovers {
            // Collect the callee's contiguous descendant block and squash
            // it (removal, not reset: the work is simply not needed).
            let block: Vec<SlotId> = {
                let Some(req) = self.requests.get(&req_id) else {
                    return;
                };
                if req.pipeline.slot(head).is_none() {
                    continue;
                }
                let end = Self::block_end(req, head);
                let start = req.pipeline.position(head).expect("live");
                let stop = req.pipeline.position(end).expect("live");
                req.pipeline
                    .iter_order()
                    .skip(start)
                    .take(stop - start + 1)
                    .collect()
            };
            let cascade = block.len() as u32;
            if self.tracer.enabled() {
                let now = self.sim.now();
                self.tracer.emit(
                    now,
                    TraceEventKind::Squash {
                        req: req_id.0,
                        slot: head.0,
                        cause: SquashCause::WrongPath,
                        cascade,
                    },
                );
            }
            for s in block {
                self.squash_slot(req_id, s, false, "unconsumed_callee", cascade);
            }
        }
        let Some(req) = self.requests.get_mut(&req_id) else {
            return;
        };
        req.waiting_callers
            .retain(|callee, _| req.pipeline.slot(*callee).is_some());
        req.stalled_reads
            .retain(|sr| req.pipeline.slot(sr.slot).is_some());
    }

    /// Post-completion processing: resolve branches, validate successor
    /// inputs, wake waiting callers, release stalls, pump.
    fn on_slot_completed(&mut self, req_id: RequestId, slot_id: SlotId) {
        // 1. Branch resolution (control-dependence validation).
        self.resolve_branch(req_id, slot_id);
        // 2. Data-dependence validation of the program-order successor.
        self.validate_successor(req_id, slot_id);
        // 3. Wake a caller stalled on this callee.
        self.wake_waiting_caller(req_id, slot_id);
        // 4. Stalled reads watching this producer can proceed.
        self.release_stalls(req_id, None);
        // 5. Fork-join contributions are handled at commit (conservative).
        self.pump(req_id);
    }

    fn resolve_branch(&mut self, req_id: RequestId, slot_id: SlotId) {
        let Some(req) = self.requests.get(&req_id) else {
            return;
        };
        let Some(slot) = req.pipeline.slot(slot_id) else {
            return;
        };
        let SlotRole::Entry { entry } = slot.role else {
            return;
        };
        let EntryKind::Branch { field, .. } = self.seqtable.kind_at(entry).clone() else {
            return;
        };
        let Some(predicted) = slot.predicted_taken else {
            return; // never speculated past
        };
        let output = slot.output.clone().expect("completed");
        let actual = Self::branch_outcome(&output, field.as_deref());
        self.predictor.record_outcome(predicted == actual);
        if self.tracer.enabled() {
            let now = self.sim.now();
            self.tracer.emit(
                now,
                TraceEventKind::BranchResolve {
                    req: req_id.0,
                    predicted,
                    actual,
                },
            );
        }
        {
            let req = self.requests.get_mut(&req_id).expect("live");
            let slot = req.pipeline.slot_mut(slot_id).expect("live");
            slot.predicted_taken = None; // resolved
        }
        if predicted != actual {
            // Squash the wrong path: everything after the branch.
            let req = self.requests.get_mut(&req_id).expect("live");
            let succ = req.pipeline.successors(slot_id);
            if let Some(first) = succ.first().copied() {
                self.squash_from(req_id, first, SquashKind::WrongPath);
            }
            // Allow re-extension along the correct path.
            let req = self.requests.get_mut(&req_id).expect("live");
            req.extended.remove(&slot_id);
        }
    }

    /// Validates the memo-predicted input of this slot's program-order
    /// successor against the actual output (§V-B).
    fn validate_successor(&mut self, req_id: RequestId, slot_id: SlotId) {
        let Some(req) = self.requests.get(&req_id) else {
            return;
        };
        let Some(slot) = req.pipeline.slot(slot_id) else {
            return;
        };
        let SlotRole::Entry { entry } = slot.role else {
            return;
        };
        let output = slot.output.clone().expect("completed");
        let expected = match self.seqtable.kind_at(entry) {
            EntryKind::Simple { .. } => output,
            // Branch entries route their own input through; forks are
            // spawned at commit with actual outputs.
            EntryKind::Branch { .. } => slot.input.clone().expect("input"),
            EntryKind::Fork { .. } => return,
        };
        // The successor is the first Entry-role slot after this slot's
        // descendant block.
        let anchor = Self::block_end(req, slot_id);
        let pos = req.pipeline.position(anchor).expect("live");
        let order: Vec<SlotId> = req.pipeline.iter_order().collect();
        let Some(&succ) = order.get(pos + 1) else {
            return;
        };
        let s = req.pipeline.slot(succ).expect("live");
        if !matches!(s.role, SlotRole::Entry { .. }) {
            return;
        }
        if s.input_speculative {
            if s.input.as_ref() == Some(&expected) {
                // Validated: the prediction was right.
                let req = self.requests.get_mut(&req_id).expect("live");
                req.pipeline.slot_mut(succ).expect("live").input_speculative = false;
            } else {
                self.squash_from(req_id, succ, SquashKind::WrongInput);
                let req = self.requests.get_mut(&req_id).expect("live");
                if let Some(s) = req.pipeline.slot_mut(succ) {
                    s.input = Some(expected);
                    s.input_speculative = false;
                }
                self.refresh_prediction(req_id, succ);
            }
        }
    }

    fn wake_waiting_caller(&mut self, req_id: RequestId, callee_slot: SlotId) {
        let Some(req) = self.requests.get_mut(&req_id) else {
            return;
        };
        let Some(caller_slot) = req.waiting_callers.remove(&callee_slot) else {
            return;
        };
        let Some(&caller_inst) = req.slot_inst.get(&caller_slot) else {
            // The caller was squashed while this callee ran; it will
            // re-issue the call against fresh state, so this completed
            // callee is an orphan — drop it (buffered writes included).
            req.buffer.squash(callee_slot);
            req.waiting_args.remove(&caller_slot);
            if let Some(callee_func) = req.pipeline.slot(callee_slot).map(|s| s.func) {
                req.pipeline.remove(callee_slot);
                req.extended.remove(&callee_slot);
                let wasted = req.slot_cpu.remove(&callee_slot);
                req.functions_squashed += 1;
                if let Some(t) = wasted {
                    self.charge_squashed(req_id, callee_func, "orphan_callee", 0, t);
                }
            }
            return;
        };
        self.consume_callee(req_id, caller_slot, caller_inst, callee_slot);
    }

    fn try_commit(&mut self, req_id: RequestId) {
        let now = self.sim.now();
        let Some(req) = self.requests.get_mut(&req_id) else {
            return;
        };
        if req.committing.is_some() || req.completed {
            return;
        }
        let Some(head) = req.pipeline.committable() else {
            return;
        };
        // Callee heads are consumed by their caller, not committed.
        if matches!(
            req.pipeline.slot(head).expect("live").role,
            SlotRole::Callee { .. }
        ) {
            return;
        }
        req.committing = Some(head);
        let ctrl = req.ctrl;
        let delay = self
            .cluster
            .controller_delay(ctrl, now, self.model.spec_commit_service);
        self.sim.schedule_in(delay, Ev::CommitApply(req_id, head));
    }

    fn on_commit_apply(&mut self, req_id: RequestId, slot_id: SlotId) {
        let Some(req) = self.requests.get_mut(&req_id) else {
            return;
        };
        req.committing = None;
        if req.pipeline.head() != Some(slot_id)
            || req.pipeline.slot(slot_id).map(|s| s.state) != Some(SlotState::Completed)
        {
            self.try_commit(req_id);
            return;
        }
        // Flush buffered writes to global storage.
        let flush = req.buffer.commit(slot_id);
        let slot = req.pipeline.remove(slot_id);
        req.extended.remove(&slot_id);
        // Credit the committed work (including merged callee stints).
        if let Some(t) = req.slot_cpu.remove(&slot_id) {
            self.metrics.useful_core_time += t;
        }
        for (k, v) in flush {
            self.kv.set(k, v);
        }
        let req = self.requests.get_mut(&req_id).expect("live");
        req.committed_sequence.push(slot.func.0);
        self.registry.inc("specfaas_commits_total");
        if self.tracer.enabled() {
            let now = self.sim.now();
            self.tracer.emit(
                now,
                TraceEventKind::Commit {
                    req: req_id.0,
                    slot: slot_id.0,
                    func: slot.func.0,
                },
            );
        }

        // Record committed knowledge for end-of-invocation table updates.
        let input = slot.input.clone().expect("committed slot has input");
        let output = slot.output.clone().expect("committed slot has output");
        let callee_inputs: Vec<Value> = slot
            .learned_calls
            .iter()
            .map(|(_, i, _)| i.clone())
            .collect();
        let callees: Vec<FuncId> = slot.learned_calls.iter().map(|(f, _, _)| *f).collect();
        req.learned.push(Learned::Memo {
            func: slot.func,
            input: input.clone(),
            output: output.clone(),
            callee_inputs,
        });
        // Promote the call observations bubbled up from consumed callees:
        // each carries its own direct callee structure, so mid-tier
        // functions get memoization rows and sequence-table edges too.
        for rec in req.call_records.remove(&slot_id).unwrap_or_default() {
            req.learned.push(Learned::Memo {
                func: rec.func,
                input: rec.input,
                output: rec.output,
                callee_inputs: rec.callee_inputs,
            });
            req.learned.push(Learned::Calls {
                caller: rec.func,
                callees: rec.callee_funcs,
            });
        }
        if let SlotRole::Entry { entry } = slot.role {
            if let EntryKind::Branch { field, .. } = self.seqtable.kind_at(entry).clone() {
                let taken = Self::branch_outcome(&output, field.as_deref());
                req.learned.push(Learned::Branch {
                    entry,
                    path: slot.path,
                    taken,
                });
            }
            req.learned.push(Learned::Calls {
                caller: slot.func,
                callees,
            });
        }

        // Useful core time accounting.
        // (complete_slot already put it into slot_cpu → metrics)
        // Note: metrics.useful_core_time is credited here.
        // Fork spawn or end detection.
        let mut fork_spawn: Option<(Vec<usize>, Option<usize>, Value)> = None;
        let mut join_target: Option<(usize, Value)> = None;
        let mut reached_end = false;
        if let SlotRole::Entry { entry } = slot.role {
            match self.seqtable.kind_at(entry).clone() {
                EntryKind::Fork { branches, join } => {
                    fork_spawn = Some((branches, join, output.clone()));
                }
                EntryKind::Simple { next } => match next {
                    Some(n) if self.seqtable.compiled().entries[n].join_arity > 1 => {
                        join_target = Some((n, output.clone()));
                    }
                    Some(_) => {}
                    None => reached_end = true,
                },
                EntryKind::Branch {
                    field,
                    taken,
                    not_taken,
                } => {
                    let dir = Self::branch_outcome(&output, field.as_deref());
                    let target = if dir { taken } else { not_taken };
                    match target {
                        Some(n) if self.seqtable.compiled().entries[n].join_arity > 1 => {
                            join_target = Some((n, slot.input.clone().expect("input")));
                        }
                        Some(_) => {}
                        None => reached_end = true,
                    }
                }
            }
        }

        let req = self.requests.get_mut(&req_id).expect("live");
        if reached_end {
            req.end_committed = true;
        }

        // Fork: spawn branch heads now, with actual outputs.
        if let Some((branches, _join, payload)) = fork_spawn {
            for b in branches {
                let func = self.seqtable.func_at(b);
                let req = self.requests.get_mut(&req_id).expect("live");
                let path = slot.path.extend(slot.func.0);
                let id = req
                    .pipeline
                    .push_back(func, SlotRole::Entry { entry: b }, path);
                let s = req.pipeline.slot_mut(id).expect("fresh");
                s.input = Some(payload.clone());
                s.non_speculative = self.app.registry.spec(func).annotations.non_speculative;
            }
        }
        // Join contribution.
        if let Some((join_entry, payload)) = join_target {
            let req = self.requests.get_mut(&req_id).expect("live");
            let arity = self.seqtable.compiled().entries[join_entry].join_arity;
            let contribs = req.fork_joins.entry(join_entry).or_default();
            contribs.push(payload);
            if contribs.len() as u32 == arity {
                let inputs = req.fork_joins.remove(&join_entry).expect("present");
                let func = self.seqtable.func_at(join_entry);
                let path = slot.path.extend(slot.func.0);
                let id = req
                    .pipeline
                    .push_back(func, SlotRole::Entry { entry: join_entry }, path);
                let s = req.pipeline.slot_mut(id).expect("fresh");
                s.input = Some(Value::List(inputs));
                s.non_speculative = self.app.registry.spec(func).annotations.non_speculative;
            }
        }

        // Release deferred side effects that turned non-speculative.
        self.release_deferred_http(req_id);

        // Request completion is checked inside pump().
        self.pump(req_id);
    }

    fn on_complete(&mut self, req_id: RequestId) {
        let now = self.sim.now();
        let Some(req) = self.requests.remove(&req_id) else {
            return;
        };
        // Apply committed knowledge to the persistent tables (§V-E: never
        // updated with speculative data — the whole invocation validated).
        // Group memo knowledge by (func, input): the callee inputs come
        // from the commit record of the caller.
        let mut memo_rows: FxHashMap<(u32, Value), (Value, Vec<Value>)> = FxHashMap::default();
        for l in &req.learned {
            match l {
                Learned::Memo {
                    func,
                    input,
                    output,
                    callee_inputs,
                } => {
                    let e = memo_rows
                        .entry((func.0, input.clone()))
                        .or_insert((output.clone(), Vec::new()));
                    e.0 = output.clone();
                    if !callee_inputs.is_empty() {
                        e.1 = callee_inputs.clone();
                    }
                }
                Learned::Branch { entry, path, taken } => {
                    self.predictor
                        .update(BranchSite::Entry(*entry), *path, *taken);
                }
                Learned::Calls { caller, callees } => {
                    self.seqtable.learn_calls(*caller, callees);
                }
            }
        }
        for ((func, input), (output, callee_inputs)) in memo_rows {
            self.memos
                .table_mut(func)
                .insert(input, output, callee_inputs);
        }
        if self.tracer.enabled() {
            self.tracer.emit(
                now,
                TraceEventKind::Terminal {
                    req: req_id.0,
                    completed: true,
                },
            );
        }
        if self.tracer.checking() {
            // The learned-table promotion above is the only place memo
            // tables grow; re-validate capacity after every request.
            for f in 0..self.app.registry.len() as u32 {
                let t = self.memos.table(f);
                self.tracer.check_memo_capacity(f, t.len(), t.capacity());
            }
        }
        self.metrics.functions_squashed += u64::from(req.functions_squashed);
        self.registry.inc("specfaas_requests_completed_total");
        if req.measured {
            self.metrics.record_completion(InvocationRecord {
                arrived: req.arrived,
                completed: now,
                functions_run: req.functions_run,
                functions_squashed: req.functions_squashed,
                sequence: req.committed_sequence,
                outcome: RequestOutcome::Completed,
            });
        }
        // Closed loop: this client immediately issues its next request.
        if self.closed_loop && now <= self.gen_deadline {
            if let Some(mut g) = self.input_gen.take() {
                let input = g(&mut self.rng);
                self.input_gen = Some(g);
                self.submit_request(input);
            }
        }
    }

    // ------------------------------------------------------------------
    // Squashing (§VI, "Minimizing Squash Cost")
    // ------------------------------------------------------------------

    /// Squashes `first` and every later slot. `kind` decides whether
    /// `first` is reset in place (re-execute) or removed (wrong path).
    fn squash_from(&mut self, req_id: RequestId, first: SlotId, kind: SquashKind) {
        let Some(req) = self.requests.get(&req_id) else {
            return;
        };
        let Some(pos) = req.pipeline.position(first) else {
            return;
        };
        let order: Vec<SlotId> = req.pipeline.iter_order().collect();
        let victims: Vec<SlotId> = order[pos..].to_vec();

        let cause = match kind {
            SquashKind::WrongPath => SquashCause::WrongPath,
            SquashKind::WrongInput => SquashCause::WrongInput,
            SquashKind::Violation => SquashCause::Violation,
            SquashKind::Fault => SquashCause::Fault,
        };
        let cascade = victims.len() as u32;
        if self.tracer.enabled() {
            let now = self.sim.now();
            self.tracer.emit(
                now,
                TraceEventKind::Squash {
                    req: req_id.0,
                    slot: first.0,
                    cause,
                    cascade,
                },
            );
        }
        self.registry
            .inc_labeled("specfaas_squashes_total", "cause", cause.name());
        // Dependents torn down because a committed-path execution
        // faulted (not because speculation was wrong).
        if kind == SquashKind::Fault {
            self.metrics.faults.squashed_due_to_fault += victims.len() as u64 - 1;
        }
        // Fork-branch heads are spawned exactly once, at their fork's
        // commit (extend_one defers fan-out). A head caught in the squash
        // suffix is a *parallel* sibling, not a dependent: removing it
        // would lose it forever and starve the join, so reset it in place
        // instead.
        let mut fork_heads: FxHashSet<usize> = FxHashSet::default();
        for i in 0..self.seqtable.compiled().entries.len() {
            if let EntryKind::Fork { branches, .. } = self.seqtable.kind_at(i) {
                fork_heads.extend(branches.iter().copied());
            }
        }
        for (i, v) in victims.iter().enumerate() {
            let req = self.requests.get(&req_id).expect("live");
            let is_fork_head = matches!(
                req.pipeline.slot(*v).map(|s| s.role),
                Some(SlotRole::Entry { entry }) if fork_heads.contains(&entry)
            );
            let reset_in_place = (i == 0 && kind != SquashKind::WrongPath) || is_fork_head;
            self.squash_slot(req_id, *v, reset_in_place, cause.name(), cascade);
        }
        // Callers waiting on removed callees: their Call will be
        // re-issued when the caller (also squashed) re-executes, or the
        // callee slot is respawned on demand. Clean any dangling waits.
        let req = self.requests.get_mut(&req_id).expect("live");
        req.waiting_callers
            .retain(|callee, _| req.pipeline.slot(*callee).is_some());
        req.stalled_reads
            .retain(|sr| req.pipeline.slot(sr.slot).is_some());
        if kind == SquashKind::Fault {
            // A removed dependent may have been the created program-order
            // successor of a *surviving* entry slot (a faulted callee's
            // caller, say). Victims form a strict suffix, so only the last
            // surviving entry slot can be affected: clear its extension
            // mark so the successor is recreated. Re-extending a
            // terminally-extended slot just re-marks it, so this is safe
            // even when nothing was lost.
            let order: Vec<SlotId> = req.pipeline.iter_order().collect();
            if let Some(&last_entry) = order.iter().rev().find(|s| {
                matches!(
                    req.pipeline.slot(**s).expect("live").role,
                    SlotRole::Entry { .. }
                )
            }) {
                req.extended.remove(&last_entry);
            }
        }
        self.pump(req_id);
    }

    fn squash_slot(
        &mut self,
        req_id: RequestId,
        slot_id: SlotId,
        reset_in_place: bool,
        site: &'static str,
        cascade: u32,
    ) {
        let req = self.requests.get_mut(&req_id).expect("live");
        let Some(func) = req.pipeline.slot(slot_id).map(|s| s.func) else {
            return;
        };
        req.functions_squashed += 1;
        req.buffer.squash(slot_id);
        req.extended.remove(&slot_id);
        req.deferred_http.remove(&slot_id);
        req.call_state.remove(&slot_id);
        req.call_records.remove(&slot_id);
        let wasted = req.slot_cpu.remove(&slot_id);
        let inst = req.slot_inst.remove(&slot_id);
        // CPU spent on a now-squashed execution is wasted work.
        if let Some(t) = wasted {
            self.charge_squashed(req_id, func, site, cascade, t);
        }
        // Kill the running instance per the configured mechanism.
        if let Some(inst_id) = inst {
            self.kill_instance(inst_id, req_id, site, cascade);
        }
        let req = self.requests.get_mut(&req_id).expect("live");
        if reset_in_place {
            let slot = req.pipeline.slot_mut(slot_id).expect("live");
            slot.state = SlotState::Created;
            slot.output = None;
            slot.predicted_output = None;
            slot.predicted_taken = None;
            slot.learned_calls.clear();
            // input/input_speculative left to the caller to fix up.
            self.refresh_prediction(req_id, slot_id);
        } else {
            req.pipeline.remove(slot_id);
        }
    }

    /// Applies the configured squash mechanism to a live instance.
    /// `site`/`cascade` label the squash for wasted-CPU attribution.
    fn kill_instance(
        &mut self,
        id: InstanceId,
        req_id: RequestId,
        site: &'static str,
        cascade: u32,
    ) {
        let now = self.sim.now();
        let Some(inst) = self.instances.get(&id) else {
            return;
        };
        let (inst_state, inst_node, inst_func, inst_started, inst_acc) = (
            inst.state,
            inst.node,
            inst.func,
            inst.started_at,
            inst.accumulated_core,
        );
        let meta_acquired = self
            .meta
            .get(&id)
            .map(|m| m.container_acquired)
            .unwrap_or(false);
        match self.config.squash {
            SquashMechanism::Lazy => {
                // Let it run to completion in the background; outputs are
                // never propagated. Blocked instances wait on callees
                // that are themselves being squashed — they cannot make
                // progress and terminate instead (their container frees).
                self.meta.remove(&id);
                if matches!(
                    inst_state,
                    InstanceState::Running
                        | InstanceState::ColdStarting
                        | InstanceState::WaitingCore
                ) {
                    self.orphans.insert(id);
                } else {
                    if inst_state == InstanceState::Blocked {
                        self.charge_squashed(req_id, inst_func, site, cascade, inst_acc);
                        if meta_acquired {
                            self.cluster
                                .node_mut(inst_node)
                                .containers
                                .release(inst_func, true);
                        }
                    }
                    self.instances.remove(&id);
                }
            }
            SquashMechanism::ProcessKill | SquashMechanism::ContainerKill => {
                let reusable = self.config.squash == SquashMechanism::ProcessKill;
                match inst_state {
                    InstanceState::Running => {
                        // The handler dies after the kill latency; the core
                        // frees then. Wasted-CPU attribution happens now
                        // (matching the paper's squash-cost accounting);
                        // the kill-latency window itself goes into
                        // `squash_kill_busy` at SquashRelease.
                        if let Some(s) = inst_started {
                            self.charge_squashed(
                                req_id,
                                inst_func,
                                site,
                                cascade,
                                (now - s) + inst_acc,
                            );
                        }
                        if self.tracer.enabled() {
                            if let (Some(s), Some(m)) = (inst_started, self.meta.get(&id)) {
                                self.tracer.emit(
                                    s,
                                    TraceEventKind::Span {
                                        req: m.req.0,
                                        func: inst_func.0,
                                        node: inst_node.0 as u32,
                                        phase: Phase::Execution,
                                        end: now + self.model.process_kill,
                                    },
                                );
                            }
                        }
                        self.sim
                            .schedule_in(self.model.process_kill, Ev::SquashRelease(id, reusable));
                        // Remove from maps now so stale Resume events are
                        // ignored; keep the instance for resource release.
                        self.meta.remove(&id);
                        if let Some(i) = self.instances.get_mut(&id) {
                            i.state = InstanceState::Squashed;
                        }
                    }
                    InstanceState::WaitingCore => {
                        // Past blocked stints are wasted work even though
                        // the instance holds no core right now.
                        self.charge_squashed(req_id, inst_func, site, cascade, inst_acc);
                        self.cluster
                            .node_mut(inst_node)
                            .cores
                            .remove_waiter(|w| *w == id);
                        if meta_acquired {
                            self.cluster
                                .node_mut(inst_node)
                                .containers
                                .release(inst_func, reusable);
                        }
                        self.meta.remove(&id);
                        self.instances.remove(&id);
                    }
                    InstanceState::Blocked => {
                        // Holds no core; count its past stints as wasted
                        // and free the container after the kill latency.
                        self.charge_squashed(req_id, inst_func, site, cascade, inst_acc);
                        self.meta.remove(&id);
                        self.instances.remove(&id);
                        if meta_acquired {
                            self.cluster
                                .node_mut(inst_node)
                                .containers
                                .release(inst_func, reusable);
                        }
                    }
                    InstanceState::ColdStarting => {
                        // Container creation already ran to completion in
                        // the model's accounting; return it to the pool.
                        self.meta.remove(&id);
                        self.instances.remove(&id);
                        if meta_acquired {
                            self.cluster
                                .node_mut(inst_node)
                                .containers
                                .release(inst_func, true);
                        }
                    }
                    _ => {
                        self.meta.remove(&id);
                        self.instances.remove(&id);
                    }
                }
            }
        }
    }

    fn on_squash_release(&mut self, id: InstanceId, reusable: bool) {
        let now = self.sim.now();
        let Some(inst) = self.instances.remove(&id) else {
            return;
        };
        // The stint up to the kill was already charged to
        // squashed_core_time by `kill_instance`; the core stayed busy for
        // the kill latency since then, which only the conservation ledger
        // sees.
        if inst.started_at.is_some() {
            self.squash_kill_busy += self.model.process_kill;
        }
        self.release_instance_resources(&inst, reusable, now);
    }

    fn release_instance_resources(&mut self, inst: &FnInstance, reusable: bool, now: SimTime) {
        if inst.started_at.is_some() {
            if let Some(next) = self.cluster.node_mut(inst.node).cores.release(now) {
                self.grant_core(next, now);
            }
        }
        self.cluster
            .node_mut(inst.node)
            .containers
            .release(inst.func, reusable);
    }

    /// Steps a lazily-squashed orphan instance: effects proceed against
    /// committed global state, writes are dropped, calls resolve to Null.
    fn orphan_step(&mut self, id: InstanceId, resume: Option<Value>) {
        let now = self.sim.now();
        let mut inst = self.instances.remove(&id).expect("orphan live");
        let effect = match inst.step(resume) {
            Ok(e) => e,
            Err(_) => Effect::Done(Value::Null),
        };
        match effect {
            Effect::Compute(d) => {
                self.instances.insert(id, inst);
                self.sim.schedule_in(d, Ev::Resume(id, None));
            }
            Effect::Get { key } => {
                let v = self.kv.get(&key).cloned().unwrap_or(Value::Null);
                self.instances.insert(id, inst);
                self.registry.inc("specfaas_kv_reads_total");
                if self.registry.enabled() {
                    self.kv_pending.push(Reverse(now + self.kv.latency().read));
                }
                self.sim
                    .schedule_in(self.kv.latency().read, Ev::Resume(id, Some(v)));
            }
            Effect::Set { .. } => {
                // Dropped: squashed state never propagates — but the
                // handler still waits out the write latency.
                self.instances.insert(id, inst);
                self.registry.inc("specfaas_kv_writes_total");
                if self.registry.enabled() {
                    self.kv_pending.push(Reverse(now + self.kv.latency().write));
                }
                self.sim
                    .schedule_in(self.kv.latency().write, Ev::Resume(id, None));
            }
            Effect::Http { .. } => {
                // Never performed for squashed functions.
                self.instances.insert(id, inst);
                self.sim.schedule_now(Ev::Resume(id, None));
            }
            Effect::FileWrite { name, data } => {
                inst.files.insert(name, data);
                self.instances.insert(id, inst);
                self.sim.schedule_now(Ev::Resume(id, None));
            }
            Effect::FileRead { name } => {
                let v = inst.files.get(&name).cloned().unwrap_or(Value::Null);
                self.instances.insert(id, inst);
                self.sim.schedule_now(Ev::Resume(id, Some(v)));
            }
            Effect::Call { .. } => {
                self.instances.insert(id, inst);
                self.sim
                    .schedule_in(self.model.transfer_fixed, Ev::Resume(id, Some(Value::Null)));
            }
            Effect::Done(_) => {
                self.orphans.remove(&id);
                // Everything this orphan ever ran was wasted: its final
                // stint plus any stints accumulated while it was blocked
                // before being squashed. The owning request is unknown by
                // now (lazy squash drops the metadata at kill time).
                let wasted = inst.accumulated_core
                    + inst
                        .started_at
                        .map(|s| now - s)
                        .unwrap_or(SimDuration::ZERO);
                self.charge_squashed(RequestId(u64::MAX), inst.func, "orphan_done", 0, wasted);
                self.release_instance_resources(&inst, true, now);
            }
        }
    }

    // ------------------------------------------------------------------
    // Fault handling: slot retries with backoff, request aborts
    // ------------------------------------------------------------------

    /// Force-removes an instance that died (crash, hang timeout,
    /// exhausted KV retries, or request abort), releasing whatever core
    /// slot, queue position and container it holds. Unlike
    /// `kill_instance` this ignores the configured squash mechanism: the
    /// handler is already dead, so even lazy squashing cannot keep it
    /// running. Its container is not reusable.
    fn teardown_instance(&mut self, id: InstanceId) {
        let now = self.sim.now();
        let meta = self.meta.remove(&id);
        let acquired = meta.as_ref().map(|m| m.container_acquired).unwrap_or(false);
        let meta_req = meta.map(|m| m.req);
        self.orphans.remove(&id);
        let Some(inst) = self.instances.remove(&id) else {
            return;
        };
        let charge_req = meta_req.unwrap_or(RequestId(u64::MAX));
        match inst.state {
            InstanceState::Running => {
                let wasted = inst.accumulated_core
                    + inst
                        .started_at
                        .map(|s| now - s)
                        .unwrap_or(SimDuration::ZERO);
                self.charge_squashed(charge_req, inst.func, "teardown", 0, wasted);
                if self.tracer.enabled() {
                    if let (Some(s), Some(req)) = (inst.started_at, meta_req) {
                        self.tracer.emit(
                            s,
                            TraceEventKind::Span {
                                req: req.0,
                                func: inst.func.0,
                                node: inst.node.0 as u32,
                                phase: Phase::Execution,
                                end: now,
                            },
                        );
                    }
                }
                if inst.started_at.is_some() {
                    if let Some(next) = self.cluster.node_mut(inst.node).cores.release(now) {
                        self.grant_core(next, now);
                    }
                }
            }
            InstanceState::Blocked => {
                self.charge_squashed(charge_req, inst.func, "teardown", 0, inst.accumulated_core);
            }
            InstanceState::WaitingCore => {
                // Past blocked stints count as wasted work even though no
                // core is held at teardown time.
                self.charge_squashed(charge_req, inst.func, "teardown", 0, inst.accumulated_core);
                self.cluster
                    .node_mut(inst.node)
                    .cores
                    .remove_waiter(|w| *w == id);
            }
            _ => {}
        }
        if acquired {
            self.cluster
                .node_mut(inst.node)
                .containers
                .release(inst.func, false);
        }
    }

    /// The instance executing `slot_id` suffered an unrecoverable-in-
    /// place fault (container crash, hang timeout, or exhausted storage
    /// retries). The slot and every dependent are squashed; the slot
    /// relaunches after backoff — or the whole request aborts once its
    /// retry budget is exhausted.
    fn slot_fault(&mut self, req_id: RequestId, slot_id: SlotId) {
        // The faulted handler is dead on the spot, not squash-killed.
        let inst = self
            .requests
            .get_mut(&req_id)
            .and_then(|r| r.slot_inst.remove(&slot_id));
        if let Some(inst_id) = inst {
            self.teardown_instance(inst_id);
        }
        let Some(req) = self.requests.get_mut(&req_id) else {
            return;
        };
        if req.pipeline.slot(slot_id).is_none() {
            return; // already squashed away
        }
        let failures = req.attempts.entry(slot_id).or_insert(0);
        *failures += 1;
        let failures = *failures;
        if failures >= self.retry.max_attempts {
            self.abort_request(req_id);
            return;
        }
        // Hold the relaunch until the backoff elapses; squash the slot
        // (reset in place, keeping its input) and its dependents now.
        req.retry_hold.insert(slot_id);
        self.metrics.faults.retried += 1;
        let backoff = self.retry.backoff(failures);
        if self.tracer.enabled() {
            let func = self
                .requests
                .get(&req_id)
                .and_then(|r| r.pipeline.slot(slot_id))
                .map(|s| s.func.0)
                .unwrap_or(u32::MAX);
            let now = self.sim.now();
            self.tracer.emit(
                now,
                TraceEventKind::RetryBackoff {
                    req: req_id.0,
                    func,
                    attempt: failures + 1,
                    backoff,
                },
            );
        }
        self.squash_from(req_id, slot_id, SquashKind::Fault);
        self.sim
            .schedule_in(backoff, Ev::RetrySlot(req_id, slot_id));
    }

    /// Backoff elapsed: the held slot may launch again (it was reset in
    /// place by the fault squash, so the ordinary pump relaunches it).
    fn on_retry_slot(&mut self, req_id: RequestId, slot_id: SlotId) {
        let Some(req) = self.requests.get_mut(&req_id) else {
            return;
        };
        req.retry_hold.remove(&slot_id);
        if self.tracer.enabled() {
            let now = self.sim.now();
            self.tracer.emit(
                now,
                TraceEventKind::Replay {
                    req: req_id.0,
                    slot: slot_id.0,
                },
            );
        }
        self.pump(req_id);
    }

    /// Invocation watchdog: a handler still live past the timeout is
    /// treated as hung and goes through the slot fault path. A blocked
    /// handler (legitimately waiting on a callee, stall, or deferred
    /// side effect) gets its watchdog re-armed instead of killed.
    fn on_timeout(&mut self, id: InstanceId) {
        if self.orphans.contains(&id) {
            return;
        }
        let Some(meta) = self.meta.get(&id) else {
            return;
        };
        let (req_id, slot_id) = (meta.req, meta.slot);
        let Some(inst) = self.instances.get(&id) else {
            return;
        };
        match inst.state {
            InstanceState::Done | InstanceState::Squashed => {}
            InstanceState::Blocked => {
                if let Some(t) = self.retry.invocation_timeout {
                    self.sim.schedule_in(t, Ev::Timeout(id));
                }
            }
            _ => {
                self.metrics.faults.timeouts += 1;
                self.registry
                    .inc_labeled("specfaas_faults_injected_total", "site", "timeout");
                if self.tracer.enabled() {
                    let now = self.sim.now();
                    self.tracer.emit(
                        now,
                        TraceEventKind::FaultInjected {
                            req: req_id.0,
                            site: "timeout",
                        },
                    );
                }
                self.slot_fault(req_id, slot_id);
            }
        }
    }

    /// Terminally fails a request: tears down every instance still
    /// working for it, discards its speculative state, and records a
    /// [`RequestOutcome::Failed`]. Committed work (already flushed to
    /// global storage) stays, matching a real platform where a workflow
    /// aborts midway.
    fn abort_request(&mut self, req_id: RequestId) {
        let now = self.sim.now();
        let Some(req) = self.requests.remove(&req_id) else {
            return;
        };
        let mut victims: Vec<InstanceId> = req.slot_inst.values().copied().collect();
        victims.sort(); // HashMap order is not deterministic
        for id in victims {
            self.teardown_instance(id);
        }
        let mut wasted: Vec<(SlotId, SimDuration)> =
            req.slot_cpu.iter().map(|(s, t)| (*s, *t)).collect();
        wasted.sort_by_key(|(s, _)| *s); // HashMap order is not deterministic
        for (slot, t) in wasted {
            let func = req
                .pipeline
                .slot(slot)
                .map(|s| s.func)
                .unwrap_or(FuncId(u32::MAX));
            self.charge_squashed(req_id, func, "abort", 0, t);
        }
        if self.tracer.enabled() {
            self.tracer.emit(
                now,
                TraceEventKind::Terminal {
                    req: req_id.0,
                    completed: false,
                },
            );
        }
        self.metrics.functions_squashed += u64::from(req.functions_squashed);
        self.registry.inc("specfaas_requests_failed_total");
        if req.measured {
            self.metrics.record_failure(InvocationRecord {
                arrived: req.arrived,
                completed: now,
                functions_run: req.functions_run,
                functions_squashed: req.functions_squashed,
                sequence: req.committed_sequence,
                outcome: RequestOutcome::Failed,
            });
        } else {
            self.metrics.faults.aborted += 1;
        }
        // Closed loop: the client observes the failure and issues its
        // next request.
        if self.closed_loop && now <= self.gen_deadline {
            if let Some(mut g) = self.input_gen.take() {
                let input = g(&mut self.rng);
                self.input_gen = Some(g);
                self.submit_request(input);
            }
        }
    }

    // ------------------------------------------------------------------
    // Drivers
    // ------------------------------------------------------------------

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Arrival => {
                if let (Some(mut w), Some(mut g)) = (self.workload, self.input_gen.take()) {
                    let input = g(&mut self.rng);
                    self.input_gen = Some(g);
                    self.submit_request(input);
                    let gap = w.next_gap(&mut self.rng);
                    self.workload = Some(w);
                    if self.sim.now() + gap <= self.gen_deadline {
                        self.sim.schedule_in(gap, Ev::Arrival);
                    }
                }
            }
            Ev::Launch(id) => self.on_launch(id),
            Ev::ContainerReady(id) => self.try_start(id),
            Ev::Resume(id, v) => self.on_resume(id, v),
            Ev::CommitApply(req, slot) => self.on_commit_apply(req, slot),
            Ev::SquashRelease(id, reusable) => self.on_squash_release(id, reusable),
            Ev::Complete(req) => self.on_complete(req),
            Ev::KvRetry(id, op, attempt) => self.on_kv_retry(id, op, attempt),
            Ev::RetrySlot(req, slot) => self.on_retry_slot(req, slot),
            Ev::Timeout(id) => self.on_timeout(id),
        }
        // Gauges observe post-event state; a disabled registry makes this
        // a single branch.
        self.sample_gauges();
    }

    /// Re-issues a KV operation after its storage backoff. The
    /// instance may have been squashed in the meantime, in which case
    /// the retry is dropped.
    fn on_kv_retry(&mut self, id: InstanceId, op: KvOp, attempt: u32) {
        let Some(meta) = self.meta.get(&id) else {
            return;
        };
        let (req_id, slot_id) = (meta.req, meta.slot);
        match op {
            KvOp::Get { key } => self.handle_get(req_id, slot_id, id, key, attempt),
            KvOp::Set { key, value } => self.handle_set(req_id, slot_id, id, key, value, attempt),
        }
    }

    /// Runs one request to completion (or terminal failure) with no
    /// background load. If the simulation drains while the request is
    /// still live — e.g. an injected hang with no invocation timeout
    /// configured — the request is aborted and recorded as failed
    /// instead of panicking.
    pub fn run_single(&mut self, input: Value) -> SimDuration {
        let target = self.next_req;
        let start = self.sim.now();
        self.submit_request(input);
        while self.requests.contains_key(&RequestId(target)) {
            let Some((_, ev)) = self.sim.step() else {
                // Nothing left to schedule but the request never
                // finished (e.g. an injected hang with no invocation
                // timeout): abort it rather than spin or panic.
                self.abort_request(RequestId(target));
                break;
            };
            self.handle(ev);
        }
        self.sim.now() - start
    }

    /// Runs `n` requests back-to-back (closed loop). Used for warming the
    /// predictor and memoization tables, and for characterization runs.
    pub fn run_closed(
        &mut self,
        n: u64,
        mut input: impl FnMut(&mut SimRng) -> Value,
    ) -> RunMetrics {
        for _ in 0..n {
            let v = input(&mut self.rng);
            self.run_single(v);
        }
        // Let background (lazy-squash) work drain.
        self.drain_all();
        self.trace_end_of_run();
        // Credit useful core time from committed requests: approximated as
        // total minus squashed is tracked incrementally; compute window.
        let mut m = std::mem::take(&mut self.metrics);
        m.window = self.sim.now() - SimTime::ZERO;
        m.cpu_utilization = self.cluster.utilization(self.sim.now());
        m.branch_hits = self.predictor.hit_rate();
        m.memo_hits = self.memos.hit_rate();
        m
    }

    /// Runs an open-loop Poisson workload at `rps` for `duration`,
    /// measuring after `warmup`, then drains in-flight work.
    pub fn run_open(
        &mut self,
        rps: f64,
        duration: SimDuration,
        warmup: SimDuration,
        input: impl FnMut(&mut SimRng) -> Value + 'static,
    ) -> RunMetrics {
        let start = self.sim.now();
        self.workload = Some(Workload::poisson(rps));
        self.input_gen = Some(Box::new(input));
        self.gen_deadline = start + duration;
        self.measure_from = start + warmup;
        self.cluster.reset_utilization(start + warmup);
        self.sim.schedule_now(Ev::Arrival);
        self.drain_all();
        self.trace_end_of_run();
        let end = self.sim.now();
        let mut m = std::mem::take(&mut self.metrics);
        m.window = self.gen_deadline.saturating_since(self.measure_from);
        m.cpu_utilization = self.cluster.utilization(end.min(self.gen_deadline));
        m.branch_hits = self.predictor.hit_rate();
        m.memo_hits = self.memos.hit_rate();
        m
    }

    /// Runs a closed-loop workload: `clients` concurrent clients, each
    /// issuing its next request as soon as the previous one completes,
    /// for `duration` (measuring after `warmup`). Saturating loads
    /// self-throttle to the service rate instead of growing an unbounded
    /// queue, matching how a fixed-connection-pool load generator drives
    /// a real deployment.
    pub fn run_concurrent(
        &mut self,
        clients: u32,
        duration: SimDuration,
        warmup: SimDuration,
        input: impl FnMut(&mut SimRng) -> Value + 'static,
    ) -> RunMetrics {
        let start = self.sim.now();
        self.closed_loop = true;
        self.input_gen = Some(Box::new(input));
        self.gen_deadline = start + duration;
        self.measure_from = start + warmup;
        self.cluster.reset_utilization(start + warmup);
        for _ in 0..clients.max(1) {
            if let Some(mut g) = self.input_gen.take() {
                let v = g(&mut self.rng);
                self.input_gen = Some(g);
                self.submit_request(v);
            }
        }
        self.drain_all();
        self.trace_end_of_run();
        self.closed_loop = false;
        let end = self.sim.now();
        let mut m = std::mem::take(&mut self.metrics);
        m.window = self.gen_deadline.saturating_since(self.measure_from);
        m.cpu_utilization = self.cluster.utilization(end.min(self.gen_deadline));
        m.branch_hits = self.predictor.hit_rate();
        m.memo_hits = self.memos.hit_rate();
        m
    }

    /// Steps the simulation until the event queue is empty AND no
    /// requests remain live. A request can outlive the queue when an
    /// injected hang wedges a handler with no invocation timeout armed:
    /// such requests are aborted (recorded as failed) and, in closed
    /// loops, the freed clients resubmit — so the loop repeats until
    /// everything settles.
    fn drain_all(&mut self) {
        loop {
            while let Some((_, ev)) = self.sim.step() {
                self.handle(ev);
            }
            if self.requests.is_empty() {
                break;
            }
            let mut stuck: Vec<RequestId> = self.requests.keys().copied().collect();
            stuck.sort(); // HashMap order is not deterministic
            for r in stuck {
                self.abort_request(r);
            }
        }
    }

    /// Diagnostic dump of live (possibly stuck) requests: pipeline slot
    /// states, waits and stalls. Empty when no requests are in flight.
    #[doc(hidden)]
    pub fn stuck_report(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (rid, req) in &self.requests {
            let slots: Vec<String> = req
                .pipeline
                .iter_order()
                .map(|sid| {
                    let sl = req.pipeline.slot(sid).expect("live");
                    format!(
                        "{sid}:{:?}:{:?}(in={} spec={})",
                        sl.func,
                        sl.state,
                        sl.input.is_some(),
                        sl.input_speculative
                    )
                })
                .collect();
            out.push(format!(
                "req {:?}: committing={:?} end={} slots=[{}] waiting={:?} stalls={} defhttp={} waitargs={:?}",
                rid.0,
                req.committing,
                req.end_committed,
                slots.join(", "),
                req.waiting_callers,
                req.stalled_reads.len(),
                req.deferred_http.len(),
                req.waiting_args.keys().collect::<Vec<_>>(),
            ));
        }
        out
    }

    /// Empties every warm container pool (cold-start experiments). The
    /// persistent tables (sequence/memoization/predictor) are unaffected,
    /// as in a deployment where containers are reclaimed during idle
    /// periods but the controller state survives.
    pub fn flush_warm_containers(&mut self) {
        self.cluster.flush_warm_containers();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfaas_platform::BaselineEngine;
    use specfaas_workflow::expr::*;
    use specfaas_workflow::{FunctionRegistry, FunctionSpec, Program, Workflow};

    fn chain_app(n: usize, exec_ms: u64) -> AppSpec {
        let mut reg = FunctionRegistry::new();
        let mut names = Vec::new();
        for i in 0..n {
            let name = format!("f{i}");
            reg.register(FunctionSpec::new(
                &name,
                Program::builder()
                    .compute_ms(exec_ms)
                    .ret(make_map([("v", add(field(input(), "v"), lit(1i64)))])),
            ));
            names.push(name);
        }
        AppSpec::new(
            "Chain",
            "Test",
            reg,
            Workflow::sequence(names.iter().map(Workflow::task).collect()),
        )
    }

    fn fresh_input(_: &mut SimRng) -> Value {
        Value::map([("v", Value::Int(0))])
    }

    #[test]
    fn single_request_completes_correctly() {
        let mut e = SpecEngine::new(Arc::new(chain_app(4, 5)), SpecConfig::full(), 1);
        e.prewarm();
        let d = e.run_single(fresh_input(&mut SimRng::seed(0)));
        assert!(d > SimDuration::ZERO);
        let m = e.run_closed(0, fresh_input);
        assert_eq!(m.completed, 1);
        assert_eq!(m.records[0].sequence, vec![0, 1, 2, 3]);
    }

    #[test]
    fn warmed_spec_is_faster_than_cold_spec() {
        let mut e = SpecEngine::new(Arc::new(chain_app(6, 5)), SpecConfig::full(), 1);
        e.prewarm();
        let first = e.run_single(fresh_input(&mut SimRng::seed(0)));
        // Tables now know input → output for every function.
        let second = e.run_single(fresh_input(&mut SimRng::seed(0)));
        assert!(
            second < first,
            "memoized run {second} should beat cold run {first}"
        );
    }

    #[test]
    fn spec_beats_baseline_on_chains() {
        let app = Arc::new(chain_app(8, 8));
        let mut base = BaselineEngine::new(Arc::clone(&app), 1);
        base.prewarm();
        let base_d = base.run_single(fresh_input(&mut SimRng::seed(0)));

        let mut spec = SpecEngine::new(Arc::clone(&app), SpecConfig::full(), 1);
        spec.prewarm();
        spec.run_single(fresh_input(&mut SimRng::seed(0))); // train
        let spec_d = spec.run_single(fresh_input(&mut SimRng::seed(0)));
        let speedup = base_d / spec_d;
        assert!(
            speedup > 2.0,
            "expected >2x speedup, got {speedup:.2} ({base_d} vs {spec_d})"
        );
    }

    #[test]
    fn memoization_off_still_correct() {
        let mut cfg = SpecConfig::full();
        cfg.memoization = false;
        let mut e = SpecEngine::new(Arc::new(chain_app(4, 5)), cfg, 1);
        e.prewarm();
        e.run_single(fresh_input(&mut SimRng::seed(0)));
        e.run_single(fresh_input(&mut SimRng::seed(0)));
        let m = e.run_closed(0, fresh_input);
        assert_eq!(m.completed, 2);
        for r in &m.records {
            assert_eq!(r.sequence, vec![0, 1, 2, 3]);
            assert_eq!(r.functions_squashed, 0);
        }
    }

    /// A branch app whose outcome depends on input data.
    fn branch_app() -> AppSpec {
        let mut reg = FunctionRegistry::new();
        reg.register(FunctionSpec::new(
            "cond",
            Program::builder()
                .compute_ms(4)
                .ret(make_map([("ok", gt(field(input(), "x"), lit(10i64)))])),
        ));
        reg.register(FunctionSpec::new(
            "yes",
            Program::builder().compute_ms(4).ret(lit("yes")),
        ));
        reg.register(FunctionSpec::new(
            "no",
            Program::builder().compute_ms(4).ret(lit("no")),
        ));
        AppSpec::new(
            "Branchy",
            "Test",
            reg,
            Workflow::when_field(
                "cond",
                "ok",
                Workflow::task("yes"),
                Some(Workflow::task("no")),
            ),
        )
    }

    #[test]
    fn branch_misprediction_squashes_and_recovers() {
        let mut e = SpecEngine::new(Arc::new(branch_app()), SpecConfig::full(), 1);
        e.prewarm();
        // Train: always taken.
        for _ in 0..5 {
            e.run_single(Value::map([("x", Value::Int(50))]));
        }
        // Now a not-taken input: predictor says taken, must squash "yes"
        // and run "no".
        e.run_single(Value::map([("x", Value::Int(5))]));
        let m = e.run_closed(0, fresh_input);
        let last = m.records.last().unwrap();
        let no = e.app().registry.lookup("no").unwrap().0;
        assert_eq!(*last.sequence.last().unwrap(), no);
        assert!(last.functions_squashed >= 1, "wrong path must be squashed");
    }

    #[test]
    fn correct_prediction_overlaps_branch_target() {
        let mut e = SpecEngine::new(Arc::new(branch_app()), SpecConfig::full(), 1);
        e.prewarm();
        for _ in 0..5 {
            e.run_single(Value::map([("x", Value::Int(50))]));
        }
        let d = e.run_single(Value::map([("x", Value::Int(50))]));
        // cond (4ms) and yes (4ms) overlap: end-to-end well under the
        // serial 8ms + overheads.
        assert!(d < SimDuration::from_millis(16), "overlapped run took {d}");
        assert!(e.predictor().hit_rate().rate() > 0.8);
    }

    /// Producer writes a record that the consumer reads: out-of-order RAW
    /// when speculated.
    fn raw_dependence_app() -> AppSpec {
        let mut reg = FunctionRegistry::new();
        reg.register(FunctionSpec::new(
            "producer",
            Program::builder()
                .compute_ms(6)
                .set(lit("shared"), field(input(), "v"))
                .ret(make_map([("v", field(input(), "v"))])),
        ));
        reg.register(FunctionSpec::new(
            "consumer",
            Program::builder()
                .get(lit("shared"), "s")
                .compute_ms(4)
                .ret(make_map([("read", var("s"))])),
        ));
        AppSpec::new(
            "RawDep",
            "Test",
            reg,
            Workflow::sequence(vec![Workflow::task("producer"), Workflow::task("consumer")]),
        )
    }

    #[test]
    fn data_violation_detected_and_output_correct() {
        let mut cfg = SpecConfig::full();
        cfg.stall_optimization = false; // isolate the squash path
        let mut e = SpecEngine::new(Arc::new(raw_dependence_app()), cfg, 1);
        e.prewarm();
        // Train with v=1 so memoization launches the consumer early on
        // the next identical request.
        e.run_single(Value::map([("v", Value::Int(1))]));
        // Same input again: the consumer launches speculatively and reads
        // "shared" before the producer's buffered write → out-of-order
        // RAW → squash → re-execution reads the forwarded value.
        e.run_single(Value::map([("v", Value::Int(1))]));
        let m = e.run_closed(0, fresh_input);
        assert_eq!(e.kv.peek("shared"), Some(&Value::Int(1)));
        assert!(
            m.records.last().unwrap().functions_squashed >= 1,
            "premature read should have been squashed"
        );
    }

    #[test]
    fn stall_list_engages_after_repeated_squashes() {
        let mut cfg = SpecConfig::full();
        cfg.stall_after_squashes = 1;
        let mut e = SpecEngine::new(Arc::new(raw_dependence_app()), cfg, 1);
        e.prewarm();
        for _ in 0..6 {
            e.run_single(Value::map([("v", Value::Int(7))]));
        }
        assert!(
            e.stall_list().stalls_avoided() > 0,
            "stall list should have engaged"
        );
        // Once stalling, later runs squash nothing.
        e.run_single(Value::map([("v", Value::Int(7))]));
        let m = e.run_closed(0, fresh_input);
        assert_eq!(m.records.last().unwrap().functions_squashed, 0);
    }

    /// Implicit workflow: root calls two leaves.
    fn implicit_app() -> AppSpec {
        let mut reg = FunctionRegistry::new();
        reg.register(FunctionSpec::new(
            "leaf1",
            Program::builder()
                .compute_ms(6)
                .ret(add(field(input(), "n"), lit(100i64))),
        ));
        reg.register(FunctionSpec::new(
            "leaf2",
            Program::builder()
                .compute_ms(6)
                .ret(add(field(input(), "n"), lit(200i64))),
        ));
        reg.register(FunctionSpec::new(
            "root",
            Program::builder()
                .compute_ms(2)
                .call("leaf1", make_map([("n", field(input(), "k"))]), "r1")
                .call("leaf2", make_map([("n", field(input(), "k"))]), "r2")
                .compute_ms(2)
                .ret(make_list([var("r1"), var("r2")])),
        ));
        AppSpec::new("Implicit", "Test", reg, Workflow::task("root"))
    }

    #[test]
    fn implicit_callees_overlap_after_training() {
        let app = Arc::new(implicit_app());
        let mut e = SpecEngine::new(Arc::clone(&app), SpecConfig::full(), 1);
        e.prewarm();
        let inp = Value::map([("k", Value::Int(3))]);
        let cold = e.run_single(inp.clone());
        let warm = e.run_single(inp.clone());
        assert!(
            warm < cold,
            "prefetched callees should overlap: cold {cold}, warm {warm}"
        );
        // And the result must still be correct: leaves at 103 and 203.
        let m = e.run_closed(0, fresh_input);
        assert_eq!(m.records.len(), 2);
        assert_eq!(m.records[1].functions_squashed, 0);
    }

    /// An implicit root whose callee arguments depend on *global state*,
    /// so memoized callee inputs can go stale.
    fn stateful_implicit_app() -> AppSpec {
        let mut reg = FunctionRegistry::new();
        reg.register(FunctionSpec::new(
            "leaf",
            Program::builder()
                .compute_ms(6)
                .ret(add(field(input(), "n"), lit(100i64))),
        ));
        reg.register(FunctionSpec::new(
            "root",
            Program::builder()
                .compute_ms(2)
                .get(lit("mode"), "m")
                .call("leaf", make_map([("n", var("m"))]), "r")
                .ret(var("r")),
        ));
        AppSpec::new("StatefulImplicit", "Test", reg, Workflow::task("root"))
    }

    #[test]
    fn implicit_wrong_callee_args_squash_and_recover() {
        let app = Arc::new(stateful_implicit_app());
        let mut e = SpecEngine::new(Arc::clone(&app), SpecConfig::full(), 1);
        e.prewarm();
        e.kv.set("mode", Value::Int(1));
        // Train: the memo row records callee input {n: 1}.
        e.run_single(Value::Null);
        e.run_single(Value::Null);
        // Flip the mode: the prefetched callee (args {n:1}) now
        // mismatches the actual call (args {n:2}) → squash + respawn.
        e.kv.set("mode", Value::Int(2));
        let d = e.run_single(Value::Null);
        assert!(d > SimDuration::ZERO);
        let m = e.run_closed(0, fresh_input);
        let rec = m.records.last().unwrap();
        assert!(rec.functions_squashed >= 1, "stale callee args must squash");
        // Committed sequence still has leaf then root.
        assert_eq!(rec.sequence.len(), 2);
    }

    #[test]
    fn lazy_squash_wastes_more_cpu_than_process_kill() {
        let mk = |squash| {
            let mut cfg = SpecConfig::full();
            cfg.squash = squash;
            cfg.stall_optimization = false;
            let mut e = SpecEngine::new(Arc::new(branch_app()), cfg, 1);
            e.prewarm();
            // Train taken, then run many not-taken → constant squashes.
            for _ in 0..5 {
                e.run_single(Value::map([("x", Value::Int(50))]));
            }
            for _ in 0..10 {
                e.run_single(Value::map([("x", Value::Int(5))]));
            }
            let m = e.run_closed(0, fresh_input);
            m.squashed_core_time
        };
        let lazy = mk(SquashMechanism::Lazy);
        let kill = mk(SquashMechanism::ProcessKill);
        assert!(
            lazy > kill,
            "lazy squash should waste more CPU: lazy {lazy}, kill {kill}"
        );
    }

    #[test]
    fn non_speculative_annotation_delays_launch() {
        let mut reg = FunctionRegistry::new();
        reg.register(FunctionSpec::new(
            "a",
            Program::builder()
                .compute_ms(5)
                .ret(make_map([("v", lit(1i64))])),
        ));
        reg.register(FunctionSpec::with_annotations(
            "careful",
            Program::builder()
                .compute_ms(5)
                .ret(make_map([("v", lit(2i64))])),
            specfaas_workflow::Annotations::non_speculative(),
        ));
        let app = AppSpec::new(
            "Annotated",
            "Test",
            reg,
            Workflow::sequence(vec![Workflow::task("a"), Workflow::task("careful")]),
        );
        let mut e = SpecEngine::new(Arc::new(app), SpecConfig::full(), 1);
        e.prewarm();
        e.run_single(Value::Null);
        let d = e.run_single(Value::Null);
        // No overlap possible: careful waits for a to commit. Response is
        // at least the serial execution time.
        assert!(d >= SimDuration::from_millis(10), "no overlap allowed: {d}");
        let m = e.run_closed(0, fresh_input);
        assert_eq!(m.records.last().unwrap().functions_squashed, 0);
    }

    #[test]
    fn pure_function_skip_avoids_execution() {
        let mut reg = FunctionRegistry::new();
        reg.register(FunctionSpec::with_annotations(
            "pure",
            Program::builder()
                .compute_ms(50)
                .ret(make_map([("v", lit(7i64))])),
            specfaas_workflow::Annotations::pure_function(),
        ));
        reg.register(FunctionSpec::new(
            "sink",
            Program::builder().compute_ms(2).ret(field(input(), "v")),
        ));
        let app = Arc::new(AppSpec::new(
            "Pure",
            "Test",
            reg,
            Workflow::sequence(vec![Workflow::task("pure"), Workflow::task("sink")]),
        ));
        let mut cfg = SpecConfig::full();
        cfg.pure_function_skip = true;
        let mut e = SpecEngine::new(Arc::clone(&app), cfg, 1);
        e.prewarm();
        let first = e.run_single(Value::Null);
        let second = e.run_single(Value::Null);
        assert!(
            second < first / 2,
            "pure skip should avoid the 50ms body: first {first}, second {second}"
        );
    }

    #[test]
    fn open_loop_load_completes() {
        let mut e = SpecEngine::new(Arc::new(chain_app(5, 5)), SpecConfig::full(), 9);
        e.prewarm();
        let m = e.run_open(
            100.0,
            SimDuration::from_secs(2),
            SimDuration::from_millis(200),
            fresh_input,
        );
        assert!(m.completed > 100, "completed only {}", m.completed);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut e = SpecEngine::new(Arc::new(chain_app(5, 5)), SpecConfig::full(), 7);
            e.prewarm();
            e.run_single(fresh_input(&mut SimRng::seed(0)));
            e.run_single(fresh_input(&mut SimRng::seed(0))).as_micros()
        };
        assert_eq!(run(), run());
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    #[test]
    fn empty_fault_plan_is_bit_identical_to_disabled() {
        let run = |enable: bool| {
            let mut e = SpecEngine::new(Arc::new(chain_app(5, 5)), SpecConfig::full(), 7);
            if enable {
                e.enable_faults(FaultPlan::none(), RetryPolicy::default());
            }
            e.prewarm();
            let m = e.run_concurrent(
                4,
                SimDuration::from_secs(1),
                SimDuration::from_millis(100),
                fresh_input,
            );
            (
                m.completed,
                m.latency.mean_ms().to_bits(),
                m.squashed_core_time,
                m.useful_core_time,
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn crash_faults_retry_and_recover() {
        let mut e = SpecEngine::new(Arc::new(chain_app(5, 5)), SpecConfig::full(), 2);
        e.enable_faults(
            FaultPlan::none().with_container_crash(0.10),
            RetryPolicy::default().with_max_attempts(10),
        );
        e.prewarm();
        let m = e.run_closed(20, fresh_input);
        assert_eq!(m.completed, 20, "all requests survive with retries");
        assert_eq!(m.failed, 0);
        assert!(m.faults.crashes > 0, "crash faults should have fired");
        assert_eq!(m.faults.crashes, m.faults.retried);
        // Every record still committed the full chain, in order.
        for r in &m.records {
            assert_eq!(r.sequence, vec![0, 1, 2, 3, 4]);
            assert_eq!(r.outcome, RequestOutcome::Completed);
        }
    }

    #[test]
    fn exhausted_retries_abort_with_failed_outcome() {
        let mut e = SpecEngine::new(Arc::new(chain_app(3, 5)), SpecConfig::full(), 1);
        e.enable_faults(
            FaultPlan::none().with_container_crash(1.0),
            RetryPolicy::default().with_max_attempts(2),
        );
        e.prewarm();
        let m = e.run_closed(3, fresh_input);
        assert_eq!(m.completed, 0, "every execution crashes");
        assert_eq!(m.failed, 3);
        assert!(m
            .records
            .iter()
            .all(|r| r.outcome == RequestOutcome::Failed));
        // Each aborted request burned its full retry budget.
        assert!(m.faults.crashes >= 3 * 2);
    }

    #[test]
    fn kv_faults_retry_at_storage_level() {
        let mut e = SpecEngine::new(Arc::new(raw_dependence_app()), SpecConfig::full(), 1);
        e.enable_faults(
            FaultPlan::none().with_kv_get(0.3).with_kv_set(0.3),
            RetryPolicy::default().with_max_attempts(10),
        );
        e.prewarm();
        let m = e.run_closed(15, |_| Value::map([("v", Value::Int(1))]));
        assert_eq!(m.completed, 15);
        assert_eq!(m.failed, 0);
        assert!(m.faults.kv_errors > 0, "KV faults should have fired");
        assert!(m.faults.retried > 0);
        // The winning write still landed.
        assert_eq!(e.kv.peek("shared"), Some(&Value::Int(1)));
    }

    #[test]
    fn hang_without_timeout_aborts_on_drain_instead_of_panicking() {
        let mut e = SpecEngine::new(Arc::new(chain_app(3, 5)), SpecConfig::full(), 1);
        e.enable_faults(FaultPlan::none().with_hang(1.0), RetryPolicy::default());
        e.prewarm();
        // The first handler wedges forever; with no invocation timeout the
        // simulation drains and the request is aborted, not panicked on.
        e.run_single(fresh_input(&mut SimRng::seed(0)));
        let m = e.run_closed(0, fresh_input);
        assert_eq!(m.failed, 1);
        assert!(m.faults.hangs >= 1);
        assert_eq!(m.records[0].outcome, RequestOutcome::Failed);
    }

    #[test]
    fn watchdog_detects_hangs_and_retries() {
        let mut e = SpecEngine::new(Arc::new(chain_app(3, 5)), SpecConfig::full(), 1);
        // Hang only in a window covering the first execution; the retry
        // runs after the window closes and succeeds.
        e.enable_faults(
            FaultPlan::none()
                .with_hang(1.0)
                .with_window(SimTime::ZERO, Some(SimTime::from_millis(50))),
            RetryPolicy::default()
                .with_timeout(SimDuration::from_millis(100))
                .with_max_attempts(5),
        );
        e.prewarm();
        e.run_single(fresh_input(&mut SimRng::seed(0)));
        let m = e.run_closed(0, fresh_input);
        assert_eq!(m.completed, 1, "watchdog should rescue the hung request");
        assert!(m.faults.timeouts >= 1, "watchdog must have fired");
        assert!(m.faults.retried >= 1);
    }

    #[test]
    fn slot_drops_only_delay_speculation() {
        let mut e = SpecEngine::new(Arc::new(chain_app(5, 5)), SpecConfig::full(), 2);
        e.enable_faults(
            FaultPlan::none().with_slot_drop(1.0),
            RetryPolicy::default(),
        );
        e.prewarm();
        let m = e.run_closed(5, fresh_input);
        // Dropping speculative slots costs performance, never correctness.
        assert_eq!(m.completed, 5);
        assert_eq!(m.failed, 0);
        assert!(m.faults.slot_drops > 0, "non-head launches should drop");
        for r in &m.records {
            assert_eq!(r.sequence, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn fault_timeline_is_deterministic_per_seed() {
        let run = || {
            let mut e = SpecEngine::new(Arc::new(chain_app(5, 5)), SpecConfig::full(), 11);
            e.enable_faults(
                FaultPlan::none()
                    .with_container_crash(0.15)
                    .with_kv_get(0.1),
                RetryPolicy::default().with_max_attempts(8),
            );
            e.prewarm();
            let m = e.run_concurrent(
                3,
                SimDuration::from_secs(1),
                SimDuration::from_millis(100),
                fresh_input,
            );
            (m.completed, m.failed, m.faults)
        };
        assert_eq!(run(), run());
    }
}
