//! Squash minimization: the stall list (paper §V-C, "Minimizing the
//! frequency of squashes").
//!
//! When the controller observes that a consumer function is repeatedly
//! squashed because it prematurely reads a record that a producer
//! function later updates, it remembers the (producer, consumer, record)
//! triple. From then on, when the consumer tries to read that record
//! while the producer is still in progress and has not yet written it,
//! the consumer's read *stalls* instead of proceeding optimistically —
//! eliminating the squash.

use std::collections::HashMap;

use specfaas_workflow::FuncId;

/// The remembered producer→consumer record dependences of one
/// application (shared across invocations, like the memoization tables).
///
/// # Example
///
/// ```
/// use specfaas_core::StallList;
/// use specfaas_workflow::FuncId;
///
/// let mut sl = StallList::new(2);
/// let (p, c) = (FuncId(0), FuncId(1));
/// assert!(!sl.should_stall(p, c, "seat"));
/// sl.record_squash(p, c, "seat");
/// sl.record_squash(p, c, "seat");
/// assert!(sl.should_stall(p, c, "seat"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct StallList {
    squashes: HashMap<(FuncId, FuncId, String), u32>,
    threshold: u32,
    stalls_avoided: u64,
}

impl StallList {
    /// Creates a stall list that engages after `threshold` squashes of
    /// the same triple.
    pub fn new(threshold: u32) -> Self {
        StallList {
            squashes: HashMap::new(),
            threshold: threshold.max(1),
            stalls_avoided: 0,
        }
    }

    /// Records that `consumer` was squashed for prematurely reading
    /// `record` later written by `producer`.
    pub fn record_squash(&mut self, producer: FuncId, consumer: FuncId, record: &str) {
        *self
            .squashes
            .entry((producer, consumer, record.to_owned()))
            .or_insert(0) += 1;
    }

    /// True if reads of `record` by `consumer` should stall while
    /// `producer` is in progress.
    pub fn should_stall(&self, producer: FuncId, consumer: FuncId, record: &str) -> bool {
        self.squashes
            .get(&(producer, consumer, record.to_owned()))
            .map(|n| *n >= self.threshold)
            .unwrap_or(false)
    }

    /// Producers that `consumer` must watch for `record` (any producer
    /// over threshold).
    pub fn producers_for(&self, consumer: FuncId, record: &str) -> Vec<FuncId> {
        self.squashes
            .iter()
            .filter(|((_, c, r), n)| *c == consumer && r == record && **n >= self.threshold)
            .map(|((p, _, _), _)| *p)
            .collect()
    }

    /// Bumps the count of squashes avoided by stalling (statistics).
    pub fn record_stall(&mut self) {
        self.stalls_avoided += 1;
    }

    /// Number of stalls taken instead of squashes.
    pub fn stalls_avoided(&self) -> u64 {
        self.stalls_avoided
    }

    /// Number of remembered triples.
    pub fn len(&self) -> usize {
        self.squashes.len()
    }

    /// True if nothing has been remembered.
    pub fn is_empty(&self) -> bool {
        self.squashes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engages_only_after_threshold() {
        let mut sl = StallList::new(3);
        let (p, c) = (FuncId(1), FuncId(2));
        sl.record_squash(p, c, "k");
        sl.record_squash(p, c, "k");
        assert!(!sl.should_stall(p, c, "k"));
        sl.record_squash(p, c, "k");
        assert!(sl.should_stall(p, c, "k"));
    }

    #[test]
    fn triples_are_independent() {
        let mut sl = StallList::new(1);
        sl.record_squash(FuncId(1), FuncId(2), "k");
        assert!(sl.should_stall(FuncId(1), FuncId(2), "k"));
        assert!(!sl.should_stall(FuncId(1), FuncId(2), "other"));
        assert!(!sl.should_stall(FuncId(3), FuncId(2), "k"));
        assert!(!sl.should_stall(FuncId(1), FuncId(4), "k"));
    }

    #[test]
    fn producers_for_lists_watchlist() {
        let mut sl = StallList::new(1);
        sl.record_squash(FuncId(1), FuncId(9), "k");
        sl.record_squash(FuncId(2), FuncId(9), "k");
        sl.record_squash(FuncId(3), FuncId(9), "other");
        let mut ps = sl.producers_for(FuncId(9), "k");
        ps.sort();
        assert_eq!(ps, vec![FuncId(1), FuncId(2)]);
    }

    #[test]
    fn zero_threshold_clamps_to_one() {
        let mut sl = StallList::new(0);
        sl.record_squash(FuncId(1), FuncId(2), "k");
        assert!(sl.should_stall(FuncId(1), FuncId(2), "k"));
    }

    #[test]
    fn stall_statistics() {
        let mut sl = StallList::new(1);
        sl.record_stall();
        sl.record_stall();
        assert_eq!(sl.stalls_avoided(), 2);
    }
}
