#![warn(missing_docs)]

//! # specfaas-core
//!
//! SpecFaaS: software-supported speculative function execution for
//! serverless applications (HPCA 2023).
//!
//! Functions of an application are executed *early, speculatively*, before
//! their control and data dependences are resolved — the serverless
//! analogue of out-of-order instruction execution. The crate implements
//! every mechanism of the paper's §V–§VI:
//!
//! * [`predictor`] — the software branch predictor: per-branch,
//!   per-path-history probability entries with confidence thresholds and a
//!   no-speculate window around 50 % (§V-A), plus the forced-accuracy
//!   oracle mode used for the paper's Fig. 14 sensitivity sweep.
//! * [`memo`] — per-function memoization tables mapping past inputs to
//!   outputs (and, for implicit workflows, callee inputs), LRU-bounded,
//!   never updated with speculative data (§V-B, §V-D).
//! * [`seqtable`] — the Sequence Table: the static compiled workflow plus
//!   dynamically learned call structure for implicit workflows (call /
//!   return bits, §V-D), letting the controller pick the next function
//!   without a conductor round trip.
//! * [`databuffer`] — the Data Buffer: per-invocation buffering of global
//!   state with V/R/W bits per (record × in-progress function), in-order
//!   RAW forwarding, out-of-order RAW squash detection, WAR/WAW handling,
//!   commit write-back and call-return column merging (§V-C, §V-D).
//! * [`pipeline`] — the Function Execution Pipeline: program-ordered
//!   in-flight slots with speculative/completed/committed states and
//!   strictly in-order commit (§V).
//! * [`stall`] — the squash-minimization stall list: remembered
//!   producer→consumer record dependences that stall the consumer instead
//!   of squashing it (§V-C).
//! * [`config`] — speculation policies: ablation switches, squash
//!   mechanisms (§VI), depth throttling and branch-confidence windows.
//! * [`engine`] — the speculative controller orchestrating all of the
//!   above on top of the `specfaas-platform` substrate.

pub mod config;
pub mod databuffer;
pub mod engine;
pub mod memo;
pub mod pipeline;
pub mod predictor;
pub mod seqtable;
pub mod stall;

pub use config::{PolicyConfig, RetryPolicy, SpecConfig, SquashMechanism};
pub use databuffer::DataBuffer;
pub use engine::{SpecCore, SpecEngine};
pub use memo::{MemoEntry, MemoTable};
pub use pipeline::{Pipeline, SlotId, SlotState};
pub use predictor::{BranchPredictor, PathHistory, Prediction};
pub use seqtable::SequenceTable;
pub use stall::StallList;
