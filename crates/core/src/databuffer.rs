//! The Data Buffer (paper §V-C, Fig. 9; call-return merging from §V-D).
//!
//! One Data Buffer exists per application invocation, on the controller
//! node. It buffers the global-storage writes of all in-progress
//! (uncommitted) functions, detects data-dependence violations between
//! concurrently-executing functions, forwards values along in-order RAW
//! dependences, and handles WAR/WAW dependences without squashes.
//!
//! Layout: a row per accessed record (storage key); within a row, a cell
//! per in-progress function with Read / Write bits and the buffered value.
//! Cells are ordered by the functions' *program order*, supplied by the
//! pipeline via the [`ProgramOrder`] trait.
//!
//! * **Write by function i** — scan the R bits of successors of `i`, up to
//!   and including the first successor with its W bit set. Any successor
//!   with R set read stale data (out-of-order RAW): it and everything
//!   after it must be squashed. The value is buffered in `i`'s cell.
//! * **Read by function i** — scan predecessors of `i` in reverse program
//!   order for a set W bit; the first hit forwards its buffered value
//!   (in-order RAW). Otherwise the read falls through to global storage.
//!   `i`'s R bit is set either way.
//! * **Commit of function i** — its buffered writes flush to global
//!   storage and its cells clear.
//! * **Squash of function i** — its cells invalidate.
//! * **Merge (call return)** — the callee's cells fold into the caller's
//!   (§V-D): callee writes become caller writes.

use std::collections::HashMap;

use specfaas_storage::Value;

use crate::pipeline::{Pipeline, SlotId};

/// Supplies the program order of in-progress functions to the buffer.
pub trait ProgramOrder {
    /// Position of `slot` in program order, `None` if not in progress.
    fn order_of(&self, slot: SlotId) -> Option<usize>;
}

impl ProgramOrder for Pipeline {
    fn order_of(&self, slot: SlotId) -> Option<usize> {
        self.position(slot)
    }
}

/// Program order backed by an explicit list (handy in tests).
impl ProgramOrder for Vec<SlotId> {
    fn order_of(&self, slot: SlotId) -> Option<usize> {
        self.iter().position(|s| *s == slot)
    }
}

#[derive(Debug, Clone, Default, PartialEq)]
struct Cell {
    read: bool,
    written: bool,
    value: Option<Value>,
}

/// Result of a buffered read.
#[derive(Debug, Clone, PartialEq)]
pub enum ReadResult {
    /// An in-order RAW dependence: the value was forwarded from an
    /// earlier in-progress function's buffered write.
    Forwarded(Value),
    /// No buffered write by a predecessor: serve the read from global
    /// storage.
    Global,
}

/// The per-invocation Data Buffer.
///
/// # Example
///
/// ```
/// use specfaas_core::DataBuffer;
/// use specfaas_core::pipeline::SlotId;
/// use specfaas_storage::Value;
///
/// let order = vec![SlotId(0), SlotId(1)];
/// let mut db = DataBuffer::new();
/// // Function 0 writes, function 1 then reads: in-order RAW, forwarded.
/// let squashes = db.write(SlotId(0), "rec", Value::Int(7), &order);
/// assert!(squashes.is_empty());
/// match db.read(SlotId(1), "rec", &order) {
///     specfaas_core::databuffer::ReadResult::Forwarded(v) => assert_eq!(v, Value::Int(7)),
///     other => panic!("{other:?}"),
/// }
/// ```
#[derive(Debug, Clone, Default)]
pub struct DataBuffer {
    rows: HashMap<String, HashMap<SlotId, Cell>>,
    forwards: u64,
    violations: u64,
}

impl DataBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        DataBuffer::default()
    }

    /// Records a write of `key` by `slot` and returns the slots that must
    /// be squashed (out-of-order RAW victims), oldest first. The caller
    /// is responsible for also squashing each victim's successors
    /// (the engine squashes from the oldest victim onward).
    pub fn write(
        &mut self,
        slot: SlotId,
        key: &str,
        value: Value,
        order: &impl ProgramOrder,
    ) -> Vec<SlotId> {
        let my_pos = order
            .order_of(slot)
            .expect("writer must be an in-progress function");
        let row = self.rows.entry(key.to_owned()).or_default();

        // Successors in program order.
        let mut successors: Vec<(usize, SlotId)> = row
            .keys()
            .filter_map(|s| order.order_of(*s).map(|p| (p, *s)))
            .filter(|(p, _)| *p > my_pos)
            .collect();
        successors.sort_unstable();

        let mut victims = Vec::new();
        for (_, s) in &successors {
            let cell = &row[s];
            if cell.read {
                victims.push(*s);
            }
            if cell.written {
                // Scanning ends at (and includes) the first column with W
                // set: a later write re-defines the record, insulating
                // everything after it (WAW handled without squash).
                break;
            }
        }
        self.violations += victims.len() as u64;

        let cell = row.entry(slot).or_default();
        cell.written = true;
        cell.value = Some(value);
        victims
    }

    /// Performs the buffered part of a read of `key` by `slot`.
    pub fn read(&mut self, slot: SlotId, key: &str, order: &impl ProgramOrder) -> ReadResult {
        let my_pos = order
            .order_of(slot)
            .expect("reader must be an in-progress function");
        let row = self.rows.entry(key.to_owned()).or_default();

        // Predecessors in reverse program order.
        let mut preds: Vec<(usize, SlotId)> = row
            .keys()
            .filter_map(|s| order.order_of(*s).map(|p| (p, *s)))
            .filter(|(p, _)| *p < my_pos)
            .collect();
        preds.sort_unstable_by(|a, b| b.cmp(a));

        let mut result = ReadResult::Global;
        for (_, s) in preds {
            let cell = &row[&s];
            if cell.written {
                result =
                    ReadResult::Forwarded(cell.value.clone().expect("written cell has a value"));
                self.forwards += 1;
                break;
            }
        }
        row.entry(slot).or_default().read = true;
        result
    }

    /// True if `slot` has a buffered write of `key` (used by the stall
    /// list to see whether a producer has produced yet).
    pub fn has_write(&self, slot: SlotId, key: &str) -> bool {
        self.rows
            .get(key)
            .and_then(|row| row.get(&slot))
            .map(|c| c.written)
            .unwrap_or(false)
    }

    /// Commits `slot`: clears its cells and returns its buffered writes
    /// (key, value) for flushing to global storage.
    pub fn commit(&mut self, slot: SlotId) -> Vec<(String, Value)> {
        let mut flush = Vec::new();
        for (key, row) in &mut self.rows {
            if let Some(cell) = row.remove(&slot) {
                if cell.written {
                    flush.push((key.clone(), cell.value.expect("written cell has a value")));
                }
            }
        }
        self.rows.retain(|_, row| !row.is_empty());
        flush.sort_by(|a, b| a.0.cmp(&b.0)); // deterministic flush order
        flush
    }

    /// Squashes `slot`: invalidates all its cells.
    pub fn squash(&mut self, slot: SlotId) {
        for row in self.rows.values_mut() {
            row.remove(&slot);
        }
        self.rows.retain(|_, row| !row.is_empty());
    }

    /// Merges the callee's cells into the caller's on a call return
    /// (§V-D). Callee writes supersede caller writes (the callee is the
    /// more recent definition); read bits are OR-ed.
    pub fn merge(&mut self, callee: SlotId, caller: SlotId) {
        for row in self.rows.values_mut() {
            if let Some(child) = row.remove(&callee) {
                let parent = row.entry(caller).or_default();
                parent.read |= child.read;
                if child.written {
                    parent.written = true;
                    parent.value = child.value;
                }
            }
        }
        self.rows.retain(|_, row| !row.is_empty());
    }

    /// Number of records with live cells.
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Values forwarded along in-order RAW dependences.
    pub fn forwards(&self) -> u64 {
        self.forwards
    }

    /// Out-of-order RAW violations detected.
    pub fn violations(&self) -> u64 {
        self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u64) -> SlotId {
        SlotId(i)
    }

    #[test]
    fn in_order_raw_forwards() {
        let order = vec![s(0), s(1), s(2)];
        let mut db = DataBuffer::new();
        assert!(db.write(s(0), "k", Value::Int(1), &order).is_empty());
        assert_eq!(
            db.read(s(2), "k", &order),
            ReadResult::Forwarded(Value::Int(1))
        );
        assert_eq!(db.forwards(), 1);
    }

    #[test]
    fn read_forwards_from_nearest_predecessor() {
        let order = vec![s(0), s(1), s(2)];
        let mut db = DataBuffer::new();
        db.write(s(0), "k", Value::Int(1), &order);
        db.write(s(1), "k", Value::Int(2), &order);
        assert_eq!(
            db.read(s(2), "k", &order),
            ReadResult::Forwarded(Value::Int(2))
        );
    }

    #[test]
    fn out_of_order_raw_squashes_reader() {
        let order = vec![s(0), s(1)];
        let mut db = DataBuffer::new();
        // Successor reads first (gets global state), predecessor then
        // writes: violation.
        assert_eq!(db.read(s(1), "k", &order), ReadResult::Global);
        let victims = db.write(s(0), "k", Value::Int(5), &order);
        assert_eq!(victims, vec![s(1)]);
        assert_eq!(db.violations(), 1);
    }

    #[test]
    fn write_scan_stops_at_first_writer() {
        // Fig. 9's Record-1 example inverted: a successor that WROTE the
        // record insulates readers beyond it (WAW / redefinition).
        let order = vec![s(0), s(1), s(2)];
        let mut db = DataBuffer::new();
        db.write(s(1), "k", Value::Int(9), &order);
        db.read(s(2), "k", &order); // reads s(1)'s value — fine
        let victims = db.write(s(0), "k", Value::Int(1), &order);
        assert!(
            victims.is_empty(),
            "s(2) read s(1)'s definition, not s(0)'s: no squash"
        );
    }

    #[test]
    fn write_squashes_reader_that_also_wrote_later() {
        // Successor both read (stale) and wrote: it is the first W column,
        // scanning ends there but it IS included — it read stale data.
        let order = vec![s(0), s(1)];
        let mut db = DataBuffer::new();
        db.read(s(1), "k", &order);
        db.write(s(1), "k", Value::Int(3), &order);
        let victims = db.write(s(0), "k", Value::Int(1), &order);
        assert_eq!(victims, vec![s(1)]);
    }

    #[test]
    fn war_handled_without_squash() {
        // R1 → W2 in order: the later write does not disturb the earlier
        // read.
        let order = vec![s(0), s(1)];
        let mut db = DataBuffer::new();
        db.read(s(0), "k", &order);
        let victims = db.write(s(1), "k", Value::Int(2), &order);
        assert!(victims.is_empty());
        // Out of order (W2 first, then R1 by the predecessor): predecessor
        // read must not see the successor's write.
        let mut db = DataBuffer::new();
        db.write(s(1), "k", Value::Int(2), &order);
        assert_eq!(db.read(s(0), "k", &order), ReadResult::Global);
    }

    #[test]
    fn waw_handled_without_squash() {
        let order = vec![s(0), s(1)];
        let mut db = DataBuffer::new();
        db.write(s(1), "k", Value::Int(2), &order);
        let victims = db.write(s(0), "k", Value::Int(1), &order);
        assert!(victims.is_empty());
        // Reads by an even later function see the younger definition.
        let order3 = vec![s(0), s(1), s(2)];
        assert_eq!(
            db.read(s(2), "k", &order3),
            ReadResult::Forwarded(Value::Int(2))
        );
    }

    #[test]
    fn commit_flushes_writes_and_clears() {
        let order = vec![s(0), s(1)];
        let mut db = DataBuffer::new();
        db.write(s(0), "a", Value::Int(1), &order);
        db.write(s(0), "b", Value::Int(2), &order);
        db.read(s(0), "c", &order);
        let flush = db.commit(s(0));
        assert_eq!(
            flush,
            vec![("a".into(), Value::Int(1)), ("b".into(), Value::Int(2))]
        );
        assert_eq!(db.rows(), 0);
    }

    #[test]
    fn squash_invalidates_cells() {
        let order = vec![s(0), s(1)];
        let mut db = DataBuffer::new();
        db.write(s(1), "k", Value::Int(9), &order);
        db.squash(s(1));
        let order3 = vec![s(0), s(1), s(2)];
        assert_eq!(db.read(s(2), "k", &order3), ReadResult::Global);
        assert!(db.commit(s(1)).is_empty());
    }

    #[test]
    fn merge_folds_callee_into_caller() {
        // Caller s(0), callee s(1): callee writes k, then merges into
        // caller; a later function forwards from the caller's column.
        let order = vec![s(0), s(1), s(2)];
        let mut db = DataBuffer::new();
        db.write(s(1), "k", Value::Int(42), &order);
        db.merge(s(1), s(0));
        assert!(db.has_write(s(0), "k"));
        assert!(!db.has_write(s(1), "k"));
        assert_eq!(
            db.read(s(2), "k", &order),
            ReadResult::Forwarded(Value::Int(42))
        );
        // Caller's commit flushes the merged write.
        let flush = db.commit(s(0));
        assert_eq!(flush, vec![("k".into(), Value::Int(42))]);
    }

    #[test]
    fn merge_preserves_caller_write_when_callee_only_read() {
        let order = vec![s(0), s(1)];
        let mut db = DataBuffer::new();
        db.write(s(0), "k", Value::Int(1), &order);
        db.read(s(1), "k", &order);
        db.merge(s(1), s(0));
        assert!(db.has_write(s(0), "k"));
        let flush = db.commit(s(0));
        assert_eq!(flush, vec![("k".into(), Value::Int(1))]);
    }

    #[test]
    fn fig9_record2_example() {
        // Fig. 9: Function i+1 has R set on Record 2; Function i then
        // writes Record 2 → out-of-order RAW, squash i+1.
        let order = vec![s(0), s(1), s(2)];
        let mut db = DataBuffer::new();
        db.read(s(2), "record2", &order);
        let victims = db.write(s(1), "record2", Value::Int(1), &order);
        assert_eq!(victims, vec![s(2)]);
    }

    #[test]
    fn repeated_read_by_same_function_not_exposed() {
        // The paper: the Data Buffer is only accessed on *exposed* reads.
        // The engine consults the local cache first; here we just check
        // re-reading after own write forwards nothing new.
        let order = vec![s(0)];
        let mut db = DataBuffer::new();
        db.write(s(0), "k", Value::Int(1), &order);
        // Own write is not a predecessor; read falls through to global.
        assert_eq!(db.read(s(0), "k", &order), ReadResult::Global);
    }
}
