//! Speculation policy configuration (paper §VI, "Configurability" and
//! "Minimizing Squash Cost") and the ablation switches behind Fig. 12.

use serde::{Deserialize, Serialize};

// Retry/backoff knobs live next to the speculation policy: both engines
// accept a `RetryPolicy` through `enable_faults`, and experiment configs
// naturally pull it from the same module as `SpecConfig`.
pub use specfaas_sim::RetryPolicy;

// Platform-policy selection (placement / keep-alive / prewarm) rides in
// the same module for the same reason: experiment configs compose a
// `SpecConfig` with a `PolicyConfig` and hand both to the harness.
pub use specfaas_platform::policy::{
    KeepAliveChoice, PlacementChoice, PolicyConfig, PrewarmChoice,
};

/// How mis-speculated function executions are terminated (§VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SquashMechanism {
    /// Let the squashed handler run to natural completion in the
    /// background, never propagating its updates. Reuses containers but
    /// wastes CPU cycles (the paper's first option; Table IV's
    /// "LazySquash").
    Lazy,
    /// Stop the whole container (~10 s, container lost — next invocation
    /// pays a cold start). The paper's second option.
    ContainerKill,
    /// Kill only the handler process inside the container (~1 ms,
    /// container stays warm). The paper's chosen mechanism.
    ProcessKill,
}

/// SpecFaaS speculation policy.
///
/// The defaults are the full system as evaluated in §VIII; the boolean
/// switches reproduce the cumulative configurations of Fig. 12.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecConfig {
    /// Predict control dependences and launch down the predicted path
    /// (§V-A). Off → execution never crosses an unresolved branch.
    pub branch_prediction: bool,
    /// Predict data dependences from memoization tables (§V-B). Off →
    /// successors wait for their producer to complete.
    pub memoization: bool,
    /// How squashes are performed.
    pub squash: SquashMechanism,
    /// Capacity of each function's memoization table (paper: a modest
    /// 50-entry table reaches 96 % hits on TrainTicket).
    pub memo_capacity: usize,
    /// Half-width of the no-speculate probability window around 50 %:
    /// branches with `|p - 0.5| <= window` are not speculated (§VI).
    pub branch_confidence_window: f64,
    /// Maximum number of in-progress (uncommitted) functions per
    /// application invocation — the Data Buffer column budget (§VIII-B
    /// reports at most 12 columns).
    pub max_depth: usize,
    /// Reduced speculation depth applied when cluster load exceeds
    /// [`SpecConfig::load_threshold`] (§VI).
    pub throttled_depth: usize,
    /// Cluster execution-slot occupancy above which depth is throttled.
    pub load_threshold: f64,
    /// Enable the stall-list squash-minimization optimization (§V-C):
    /// remembered producer→consumer dependences stall instead of squash.
    pub stall_optimization: bool,
    /// Squashes of the same (producer, consumer, record) triple before the
    /// stall list engages.
    pub stall_after_squashes: u32,
    /// Honour `pure-function` annotations by skipping execution on a
    /// memoization hit. The paper implements this but keeps it off in the
    /// evaluation to stay conservative (§VIII-B); same default here.
    pub pure_function_skip: bool,
    /// When set, branch predictions are drawn from an oracle that is
    /// correct with exactly this probability — the controlled hit-rate
    /// sweep of Fig. 14 (§VII uses 0.90 for FaaSChain).
    pub forced_branch_accuracy: Option<f64>,
    /// Hard cap on dynamic slots per request (loop-unroll safety net).
    pub max_slots_per_request: usize,
}

impl Default for SpecConfig {
    fn default() -> Self {
        SpecConfig {
            branch_prediction: true,
            memoization: true,
            squash: SquashMechanism::ProcessKill,
            memo_capacity: 50,
            branch_confidence_window: 0.10,
            max_depth: 12,
            throttled_depth: 4,
            load_threshold: 0.85,
            stall_optimization: true,
            stall_after_squashes: 2,
            pure_function_skip: false,
            forced_branch_accuracy: None,
            max_slots_per_request: 512,
        }
    }
}

impl SpecConfig {
    /// Fig. 12 ablation step 1: branch prediction (and the Sequence-Table
    /// fast path) only.
    pub fn branch_prediction_only() -> Self {
        SpecConfig {
            memoization: false,
            squash: SquashMechanism::Lazy,
            stall_optimization: false,
            ..SpecConfig::default()
        }
    }

    /// Fig. 12 ablation step 2: branch prediction + memoization, naive
    /// squashing.
    pub fn without_squash_optimization() -> Self {
        SpecConfig {
            squash: SquashMechanism::Lazy,
            stall_optimization: false,
            ..SpecConfig::default()
        }
    }

    /// The full system (Fig. 12 step 3; the default).
    pub fn full() -> Self {
        SpecConfig::default()
    }

    /// Effective speculation depth given current cluster occupancy.
    pub fn effective_depth(&self, cluster_occupancy: f64) -> usize {
        if cluster_occupancy > self.load_threshold {
            self.throttled_depth.min(self.max_depth)
        } else {
            self.max_depth
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_full_system() {
        let c = SpecConfig::default();
        assert!(c.branch_prediction && c.memoization);
        assert_eq!(c.squash, SquashMechanism::ProcessKill);
        assert!(c.stall_optimization);
        assert!(!c.pure_function_skip, "paper keeps pure-skip off");
        assert_eq!(c.memo_capacity, 50);
        assert_eq!(c.max_depth, 12);
    }

    #[test]
    fn ablation_presets_are_cumulative() {
        let bp = SpecConfig::branch_prediction_only();
        assert!(bp.branch_prediction && !bp.memoization);
        assert_eq!(bp.squash, SquashMechanism::Lazy);
        let mem = SpecConfig::without_squash_optimization();
        assert!(mem.branch_prediction && mem.memoization);
        assert_eq!(mem.squash, SquashMechanism::Lazy);
        assert_eq!(SpecConfig::full(), SpecConfig::default());
    }

    #[test]
    fn depth_throttles_under_load() {
        let c = SpecConfig::default();
        assert_eq!(c.effective_depth(0.5), c.max_depth);
        assert_eq!(c.effective_depth(0.95), c.throttled_depth);
    }
}
