//! The Sequence Table (paper §V-A; implicit-workflow extensions §V-D).
//!
//! The Sequence Table lists the ordered sequence of functions an
//! application executes — like the instruction sequence of a program — so
//! the controller can pick the next function to launch without invoking a
//! conductor (removing the Transfer Function Overhead of §III).
//!
//! For explicit workflows the table is created at application compile time
//! from the [`specfaas_workflow::CompiledWorkflow`]; entries at branches
//! embed branch-predictor state. For implicit workflows the platform
//! cannot see function internals, so the table *learns* the call structure
//! from committed invocations: each caller entry gains pointers with the
//! Call (C) bit to its observed callees, and callee entries carry the
//! Return (R) bit (Fig. 10(b)).

use std::collections::HashMap;

use specfaas_workflow::{CompiledWorkflow, EntryKind, FuncId};

/// A learned call edge of an implicit workflow: "`caller` invokes `callee`
/// at its `site`-th call site".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallEdge {
    /// The callee function (pointer with C bit in the paper's figure).
    pub callee: FuncId,
    /// How many committed invocations of the caller performed this call
    /// (used to decide whether to speculate the call).
    pub observations: u64,
}

/// The Sequence Table of one application.
#[derive(Debug, Clone)]
pub struct SequenceTable {
    /// The static skeleton (explicit workflows; a single root entry for
    /// implicit workflows).
    compiled: CompiledWorkflow,
    /// Learned callee lists, per caller function, in call order
    /// (implicit workflows, Fig. 10(b)).
    calls: HashMap<FuncId, Vec<CallEdge>>,
    /// Committed invocation count per caller (denominator for call
    /// probabilities).
    caller_commits: HashMap<FuncId, u64>,
}

impl SequenceTable {
    /// Builds the table from a compiled workflow.
    pub fn new(compiled: CompiledWorkflow) -> Self {
        SequenceTable {
            compiled,
            calls: HashMap::new(),
            caller_commits: HashMap::new(),
        }
    }

    /// The static compiled skeleton.
    pub fn compiled(&self) -> &CompiledWorkflow {
        &self.compiled
    }

    /// The entry index execution starts at.
    pub fn start(&self) -> usize {
        self.compiled.start
    }

    /// The function at `entry`.
    ///
    /// # Panics
    /// Panics if `entry` is out of range.
    pub fn func_at(&self, entry: usize) -> FuncId {
        self.compiled.entries[entry].func
    }

    /// The continuation kind at `entry`.
    ///
    /// # Panics
    /// Panics if `entry` is out of range.
    pub fn kind_at(&self, entry: usize) -> &EntryKind {
        &self.compiled.entries[entry].kind
    }

    /// Records the committed call sequence of one invocation of `caller`
    /// (Fig. 10(b) is built up this way). Only non-speculative,
    /// committed executions update the table (§V-E).
    pub fn learn_calls(&mut self, caller: FuncId, callees: &[FuncId]) {
        *self.caller_commits.entry(caller).or_insert(0) += 1;
        let edges = self.calls.entry(caller).or_default();
        for (site, callee) in callees.iter().enumerate() {
            match edges.get_mut(site) {
                Some(edge) if edge.callee == *callee => edge.observations += 1,
                Some(edge) => {
                    // Call structure diverged at this site: reset the edge
                    // to the newly observed callee (counts restart).
                    *edge = CallEdge {
                        callee: *callee,
                        observations: 1,
                    };
                    // Later sites are no longer trustworthy.
                    edges.truncate(site + 1);
                }
                None => edges.push(CallEdge {
                    callee: *callee,
                    observations: 1,
                }),
            }
        }
    }

    /// The learned callee list of `caller`, in call order.
    pub fn callees_of(&self, caller: FuncId) -> &[CallEdge] {
        self.calls.get(&caller).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Empirical probability that `caller` performs its `site`-th call.
    pub fn call_probability(&self, caller: FuncId, site: usize) -> f64 {
        let commits = self.caller_commits.get(&caller).copied().unwrap_or(0);
        if commits == 0 {
            return 0.0;
        }
        let obs = self
            .callees_of(caller)
            .get(site)
            .map(|e| e.observations)
            .unwrap_or(0);
        obs as f64 / commits as f64
    }

    /// True once `caller` has at least one committed invocation on record
    /// (speculative callee launch requires history, §V-D).
    pub fn knows_caller(&self, caller: FuncId) -> bool {
        self.caller_commits.get(&caller).copied().unwrap_or(0) > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfaas_workflow::expr::lit;
    use specfaas_workflow::{FunctionRegistry, FunctionSpec, Program, Workflow};

    fn table() -> SequenceTable {
        let mut reg = FunctionRegistry::new();
        for n in ["a", "b", "c"] {
            reg.register(FunctionSpec::new(n, Program::builder().ret(lit(1i64))));
        }
        let wf = Workflow::sequence(vec![
            Workflow::task("a"),
            Workflow::task("b"),
            Workflow::task("c"),
        ]);
        SequenceTable::new(CompiledWorkflow::compile(&wf, &reg).unwrap())
    }

    #[test]
    fn static_skeleton_walk() {
        let t = table();
        assert_eq!(t.start(), 0);
        assert_eq!(t.func_at(0), FuncId(0));
        assert_eq!(t.kind_at(0), &EntryKind::Simple { next: Some(1) });
    }

    #[test]
    fn learns_call_structure() {
        let mut t = table();
        let f = FuncId(0);
        assert!(!t.knows_caller(f));
        t.learn_calls(f, &[FuncId(1), FuncId(2)]);
        t.learn_calls(f, &[FuncId(1), FuncId(2)]);
        assert!(t.knows_caller(f));
        assert_eq!(t.callees_of(f).len(), 2);
        assert_eq!(t.call_probability(f, 0), 1.0);
        assert_eq!(t.call_probability(f, 1), 1.0);
        assert_eq!(t.call_probability(f, 2), 0.0);
    }

    #[test]
    fn conditional_call_probability() {
        let mut t = table();
        let f = FuncId(0);
        t.learn_calls(f, &[FuncId(1), FuncId(2)]);
        t.learn_calls(f, &[FuncId(1)]); // second call skipped this time
        assert_eq!(t.call_probability(f, 0), 1.0);
        assert_eq!(t.call_probability(f, 1), 0.5);
    }

    #[test]
    fn diverged_call_site_resets() {
        let mut t = table();
        let f = FuncId(0);
        t.learn_calls(f, &[FuncId(1), FuncId(2)]);
        t.learn_calls(f, &[FuncId(2)]); // different callee at site 0
        assert_eq!(t.callees_of(f).len(), 1);
        assert_eq!(t.callees_of(f)[0].callee, FuncId(2));
        assert_eq!(t.callees_of(f)[0].observations, 1);
    }

    #[test]
    fn unknown_caller_has_no_edges() {
        let t = table();
        assert!(t.callees_of(FuncId(9)).is_empty());
        assert_eq!(t.call_probability(FuncId(9), 0), 0.0);
    }
}
