//! Per-function memoization tables (paper §V-B, extended for implicit
//! workflows in §V-D).
//!
//! Each function keeps a table of `{input → output}` pairs observed on
//! *committed* executions. When the controller is about to launch a
//! function with inputs present in the table, it retrieves the predicted
//! outputs and speculatively launches the successor with them. For
//! implicit workflows, each row additionally stores the input values the
//! function passed to each of its callees, so callees can be launched
//! speculatively alongside the caller.
//!
//! Tables are LRU-bounded: the paper reports that a modest 50-entry table
//! reaches a 96 % average hit rate on TrainTicket, and that the combined
//! tables of an application occupy only 1.5–30 KB.

use specfaas_sim::hash::FxHashMap;

use specfaas_sim::stats::HitRate;
use specfaas_storage::Value;

/// One memoization row: the outputs observed for a given input, plus the
/// observed callee inputs (in call order) for implicit workflows.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoEntry {
    /// The output the function produced for this input.
    pub output: Value,
    /// Input documents passed to each callee, in call order (empty for
    /// leaf functions and explicit workflows).
    pub callee_inputs: Vec<Value>,
    lru_tick: u64,
}

/// The memoization table of one function.
///
/// # Example
///
/// ```
/// use specfaas_core::MemoTable;
/// use specfaas_storage::Value;
///
/// let mut t = MemoTable::new(50);
/// t.insert(Value::Int(1), Value::Int(10), vec![]);
/// assert_eq!(t.lookup(&Value::Int(1)).map(|e| &e.output), Some(&Value::Int(10)));
/// assert!(t.lookup(&Value::Int(2)).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct MemoTable {
    entries: FxHashMap<Value, MemoEntry>,
    capacity: usize,
    tick: u64,
    stats: HitRate,
}

impl MemoTable {
    /// Creates an empty table holding at most `capacity` rows.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "memo table capacity must be positive");
        MemoTable {
            entries: FxHashMap::default(),
            capacity,
            tick: 0,
            stats: HitRate::new(),
        }
    }

    /// Looks up the row for `input`, updating LRU recency and hit-rate
    /// statistics.
    pub fn lookup(&mut self, input: &Value) -> Option<&MemoEntry> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(input) {
            Some(e) => {
                e.lru_tick = tick;
                self.stats.record(true);
                Some(&*e)
            }
            None => {
                self.stats.record(false);
                None
            }
        }
    }

    /// Looks up without touching statistics or recency (used by
    /// validation paths that should not distort the hit rate).
    pub fn peek(&self, input: &Value) -> Option<&MemoEntry> {
        self.entries.get(input)
    }

    /// Inserts or replaces the row for `input`. Only ever called at
    /// commit time with validated, non-speculative values (§V-E).
    pub fn insert(&mut self, input: Value, output: Value, callee_inputs: Vec<Value>) {
        self.tick += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&input) {
            // Evict the least recently used row.
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.lru_tick)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(
            input,
            MemoEntry {
                output,
                callee_inputs,
                lru_tick: self.tick,
            },
        );
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Maximum number of rows (the LRU bound).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookup hit-rate statistics.
    pub fn hit_rate(&self) -> HitRate {
        self.stats
    }

    /// Approximate memory footprint in bytes (§V-B sizes tables this way).
    pub fn approx_size_bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|(k, e)| {
                k.approx_size_bytes()
                    + e.output.approx_size_bytes()
                    + e.callee_inputs
                        .iter()
                        .map(Value::approx_size_bytes)
                        .sum::<usize>()
                    + 16
            })
            .sum()
    }
}

/// The memoization tables of all functions in an application, indexed by
/// function id.
#[derive(Debug, Clone)]
pub struct MemoTables {
    tables: Vec<MemoTable>,
}

impl MemoTables {
    /// One table per function, each with `capacity` rows.
    pub fn new(functions: usize, capacity: usize) -> Self {
        MemoTables {
            tables: (0..functions).map(|_| MemoTable::new(capacity)).collect(),
        }
    }

    /// The table of function `func`.
    ///
    /// # Panics
    /// Panics if `func` is out of range.
    pub fn table_mut(&mut self, func: u32) -> &mut MemoTable {
        &mut self.tables[func as usize]
    }

    /// Shared access to the table of function `func`.
    ///
    /// # Panics
    /// Panics if `func` is out of range.
    pub fn table(&self, func: u32) -> &MemoTable {
        &self.tables[func as usize]
    }

    /// Aggregate hit rate across all functions.
    pub fn hit_rate(&self) -> HitRate {
        let mut agg = HitRate::new();
        for t in &self.tables {
            agg.merge(t.hit_rate());
        }
        agg
    }

    /// Combined approximate size in bytes (the paper reports 1.5–30 KB
    /// per application).
    pub fn approx_size_bytes(&self) -> usize {
        self.tables.iter().map(MemoTable::approx_size_bytes).sum()
    }

    /// Entries resident across all tables — the memo-occupancy gauge.
    pub fn total_entries(&self) -> usize {
        self.tables.iter().map(MemoTable::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_roundtrip() {
        let mut t = MemoTable::new(4);
        t.insert(Value::Int(1), Value::str("a"), vec![Value::Int(9)]);
        let e = t.lookup(&Value::Int(1)).unwrap();
        assert_eq!(e.output, Value::str("a"));
        assert_eq!(e.callee_inputs, vec![Value::Int(9)]);
    }

    #[test]
    fn replace_updates_output() {
        let mut t = MemoTable::new(4);
        t.insert(Value::Int(1), Value::str("old"), vec![]);
        t.insert(Value::Int(1), Value::str("new"), vec![]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(&Value::Int(1)).unwrap().output, Value::str("new"));
    }

    #[test]
    fn lru_evicts_coldest() {
        let mut t = MemoTable::new(2);
        t.insert(Value::Int(1), Value::Int(10), vec![]);
        t.insert(Value::Int(2), Value::Int(20), vec![]);
        t.lookup(&Value::Int(1)); // refresh 1
        t.insert(Value::Int(3), Value::Int(30), vec![]);
        assert!(t.peek(&Value::Int(1)).is_some(), "recently used survives");
        assert!(t.peek(&Value::Int(2)).is_none(), "LRU victim evicted");
        assert!(t.peek(&Value::Int(3)).is_some());
    }

    #[test]
    fn hit_rate_accounting() {
        let mut t = MemoTable::new(4);
        t.insert(Value::Int(1), Value::Int(1), vec![]);
        t.lookup(&Value::Int(1));
        t.lookup(&Value::Int(2));
        assert!((t.hit_rate().rate() - 0.5).abs() < 1e-12);
        // peek does not count.
        t.peek(&Value::Int(2));
        assert_eq!(t.hit_rate().total(), 2);
    }

    #[test]
    fn size_estimate_within_paper_band() {
        // ~100 modest entries should land in the paper's 1.5KB-30KB band.
        let mut tables = MemoTables::new(10, 50);
        for f in 0..10u32 {
            for i in 0..10 {
                tables.table_mut(f).insert(
                    Value::map([("user", Value::Int(i))]),
                    Value::map([("result", Value::Int(i * 7))]),
                    vec![],
                );
            }
        }
        let bytes = tables.approx_size_bytes();
        assert!(
            (1_500..=30_000).contains(&bytes),
            "combined tables {bytes}B outside the paper's band"
        );
    }

    #[test]
    fn tables_aggregate_hit_rate() {
        let mut ts = MemoTables::new(2, 4);
        ts.table_mut(0).insert(Value::Int(1), Value::Int(1), vec![]);
        ts.table_mut(0).lookup(&Value::Int(1));
        ts.table_mut(1).lookup(&Value::Int(1));
        assert!((ts.hit_rate().rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        MemoTable::new(0);
    }

    /// A crash-retry re-commits the same (input, output) row. Duplicate
    /// inserts at capacity must replace in place, never evict a third
    /// party or grow the table.
    #[test]
    fn faulted_reinsert_at_capacity_does_not_evict() {
        let mut t = MemoTable::new(2);
        t.insert(Value::Int(1), Value::Int(10), vec![]);
        t.insert(Value::Int(2), Value::Int(20), vec![]);
        // Retried commit of key 1 (same row, arriving again after a fault).
        t.insert(Value::Int(1), Value::Int(10), vec![]);
        assert_eq!(t.len(), 2);
        assert!(t.peek(&Value::Int(1)).is_some());
        assert!(t.peek(&Value::Int(2)).is_some());
    }

    /// Interleaves a stream of fresh inserts with fault-retry duplicates
    /// and hot-key lookups: the table stays LRU-bounded, the hot key
    /// survives, and duplicates never inflate occupancy.
    #[test]
    fn eviction_bounded_under_interleaved_faulted_inserts() {
        let mut t = MemoTable::new(4);
        t.insert(Value::Int(0), Value::Int(0), vec![]); // hot key
        for i in 1..30i64 {
            t.lookup(&Value::Int(0)); // keep the hot key recent
            t.insert(Value::Int(i), Value::Int(i * 10), vec![]);
            if i % 3 == 0 {
                // A faulted execution retries and re-commits its row.
                t.insert(Value::Int(i), Value::Int(i * 10), vec![]);
            }
        }
        assert_eq!(t.len(), 4, "capacity bound must hold");
        assert!(
            t.peek(&Value::Int(0)).is_some(),
            "hot key must survive 29 eviction rounds"
        );
        assert!(t.peek(&Value::Int(29)).is_some(), "newest row present");
    }

    /// Same interleaved faulted-insert sequence twice ⇒ identical
    /// surviving rows: every entry has a distinct LRU tick, so victim
    /// selection never depends on hash-map iteration order.
    #[test]
    fn eviction_order_is_deterministic() {
        let run = || {
            let mut t = MemoTable::new(3);
            for i in 0..40i64 {
                t.insert(Value::Int(i % 7), Value::Int(i), vec![]);
                if i % 4 == 0 {
                    t.lookup(&Value::Int((i + 2) % 7));
                }
                if i % 5 == 0 {
                    t.insert(Value::Int(i % 7), Value::Int(i), vec![]); // retry
                }
            }
            let mut alive: Vec<i64> = (0..7)
                .filter(|k| t.peek(&Value::Int(*k)).is_some())
                .collect();
            alive.sort_unstable();
            alive
        };
        let a = run();
        assert_eq!(a.len(), 3);
        assert_eq!(a, run());
    }
}
