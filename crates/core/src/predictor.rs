//! The software branch predictor (paper §V-A).
//!
//! Each branch point (a `when`/`while` condition in an explicit workflow,
//! or a "does function f call function g?" decision in an implicit
//! workflow) gets a predictor entry. Because the paper finds that the path
//! of functions executed from the start of the application typically
//! determines the branch outcome, each entry holds one sub-entry per
//! observed *path history* reaching the branch.
//!
//! A sub-entry stores taken/not-taken counts; the predictor speculates
//! only when the empirical probability is confidently away from 50 %
//! (§VI, "Configurability"). A forced-accuracy oracle mode reproduces the
//! controlled sweep of Fig. 14.

use std::collections::HashMap;

use specfaas_sim::stats::HitRate;
use specfaas_sim::SimRng;

/// A compact encoding of "the sequence of functions executed so far" —
/// the path history that keys predictor sub-entries.
///
/// Implemented as an order-sensitive 64-bit rolling hash: `extend` is
/// cheap and two different prefixes collide with negligible probability
/// at application scale (tens of functions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PathHistory(u64);

impl PathHistory {
    /// The empty path (application entry).
    pub fn start() -> Self {
        PathHistory(0xcbf2_9ce4_8422_2325)
    }

    /// Returns the path extended by one executed function.
    #[must_use]
    pub fn extend(self, func: u32) -> PathHistory {
        let mut h = self.0 ^ u64::from(func).wrapping_add(0x9e37_79b9_7f4a_7c15);
        h = h.wrapping_mul(0x100_0000_01b3);
        h ^= h >> 29;
        PathHistory(h)
    }
}

/// A branch-point identifier: an explicit workflow entry index, or an
/// implicit (caller, call-site) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchSite {
    /// Branch at a compiled-workflow entry.
    Entry(usize),
    /// "Does `caller` invoke its `site`-th learned callee?" decision.
    Call {
        /// Caller function id.
        caller: u32,
        /// Call-site index within the caller's learned callee list.
        site: usize,
    },
}

/// The outcome of consulting the predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Prediction {
    /// Speculate down the taken path.
    Taken,
    /// Speculate down the not-taken path.
    NotTaken,
    /// Do not speculate (no history, or probability too close to 50 %).
    NoSpeculation,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Counts {
    taken: u64,
    not_taken: u64,
}

impl Counts {
    fn total(&self) -> u64 {
        self.taken + self.not_taken
    }
    fn p_taken(&self) -> f64 {
        if self.total() == 0 {
            0.5
        } else {
            self.taken as f64 / self.total() as f64
        }
    }
}

/// The per-application branch predictor table.
///
/// # Example
///
/// ```
/// use specfaas_core::predictor::{BranchPredictor, BranchSite, PathHistory, Prediction};
///
/// let mut bp = BranchPredictor::new(0.10);
/// let site = BranchSite::Entry(2);
/// let path = PathHistory::start().extend(0).extend(1);
/// assert_eq!(bp.predict(site, path, None), Prediction::NoSpeculation);
/// for _ in 0..10 {
///     bp.update(site, path, true);
/// }
/// assert_eq!(bp.predict(site, path, None), Prediction::Taken);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BranchPredictor {
    entries: HashMap<(BranchSite, PathHistory), Counts>,
    /// Per-site sum over all path sub-entries, maintained incrementally by
    /// `update` so the unseen-path fallback in `predict` is O(1) instead
    /// of a scan over the whole entry table.
    site_totals: HashMap<BranchSite, Counts>,
    confidence_window: f64,
    accuracy: HitRate,
}

impl BranchPredictor {
    /// Creates a predictor with the given no-speculate half-window around
    /// 50 % (§VI).
    ///
    /// # Panics
    /// Panics if `confidence_window` is not in `[0, 0.5)`.
    pub fn new(confidence_window: f64) -> Self {
        assert!(
            (0.0..0.5).contains(&confidence_window),
            "window must be in [0, 0.5)"
        );
        BranchPredictor {
            entries: HashMap::new(),
            site_totals: HashMap::new(),
            confidence_window,
            accuracy: HitRate::new(),
        }
    }

    /// Consults the predictor for a branch at `site` reached via `path`.
    ///
    /// When `oracle` is supplied (forced-accuracy mode, Fig. 14), it is
    /// `(actual_outcome, accuracy, rng)` — the prediction equals the
    /// actual outcome with probability `accuracy`, bypassing the learned
    /// counts entirely.
    pub fn predict(
        &self,
        site: BranchSite,
        path: PathHistory,
        oracle: Option<(bool, f64, &mut SimRng)>,
    ) -> Prediction {
        if let Some((actual, acc, rng)) = oracle {
            let correct = rng.chance(acc);
            let predicted = if correct { actual } else { !actual };
            return if predicted {
                Prediction::Taken
            } else {
                Prediction::NotTaken
            };
        }
        // Prefer the path-specific sub-entry; fall back to the cached
        // per-site aggregate (first visits via a new path).
        let counts = self.entries.get(&(site, path)).copied().or_else(|| {
            self.site_totals
                .get(&site)
                .copied()
                .filter(|agg| agg.total() > 0)
        });
        match counts {
            None => Prediction::NoSpeculation,
            Some(c) => {
                let p = c.p_taken();
                if (p - 0.5).abs() <= self.confidence_window {
                    Prediction::NoSpeculation
                } else if p > 0.5 {
                    Prediction::Taken
                } else {
                    Prediction::NotTaken
                }
            }
        }
    }

    /// Records a resolved branch outcome. Only ever called with
    /// *committed* (non-speculative) outcomes (§V-E).
    pub fn update(&mut self, site: BranchSite, path: PathHistory, taken: bool) {
        let c = self.entries.entry((site, path)).or_default();
        let agg = self.site_totals.entry(site).or_default();
        if taken {
            c.taken += 1;
            agg.taken += 1;
        } else {
            c.not_taken += 1;
            agg.not_taken += 1;
        }
    }

    /// Records whether a speculated prediction turned out correct, for the
    /// hit-rate statistics reported in §VIII-B.
    pub fn record_outcome(&mut self, correct: bool) {
        self.accuracy.record(correct);
    }

    /// Prediction accuracy over speculated branches.
    pub fn hit_rate(&self) -> HitRate {
        self.accuracy
    }

    /// Number of (site, path) sub-entries stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the predictor holds no (site, path) sub-entries. Because
    /// sub-entries are only created by [`BranchPredictor::update`], which
    /// records exactly one outcome, this is equivalent to "no outcomes
    /// were ever recorded via `update`" — oracle-mode predictions and
    /// [`BranchPredictor::record_outcome`] accuracy samples do not count.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    #[cfg(test)]
    fn recomputed_site_aggregate(&self, site: BranchSite) -> Counts {
        let mut agg = Counts::default();
        for ((s, _), c) in &self.entries {
            if *s == site {
                agg.taken += c.taken;
                agg.not_taken += c.not_taken;
            }
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site() -> BranchSite {
        BranchSite::Entry(1)
    }

    #[test]
    fn cold_predictor_abstains() {
        let bp = BranchPredictor::new(0.1);
        assert_eq!(
            bp.predict(site(), PathHistory::start(), None),
            Prediction::NoSpeculation
        );
    }

    #[test]
    fn learns_biased_branch() {
        let mut bp = BranchPredictor::new(0.1);
        let p = PathHistory::start();
        for i in 0..20 {
            bp.update(site(), p, i % 10 != 0); // 90% taken
        }
        assert_eq!(bp.predict(site(), p, None), Prediction::Taken);
    }

    #[test]
    fn near_50_percent_abstains() {
        let mut bp = BranchPredictor::new(0.1);
        let p = PathHistory::start();
        for i in 0..20 {
            bp.update(site(), p, i % 2 == 0); // 50%
        }
        assert_eq!(bp.predict(site(), p, None), Prediction::NoSpeculation);
    }

    #[test]
    fn path_sensitivity() {
        // Same branch, two paths with opposite biases (the f0/f1 vs f0'/f1'
        // example of §V-A).
        let mut bp = BranchPredictor::new(0.1);
        let p1 = PathHistory::start().extend(0).extend(1);
        let p2 = PathHistory::start().extend(0).extend(9);
        for _ in 0..10 {
            bp.update(site(), p1, true);
            bp.update(site(), p2, false);
        }
        assert_eq!(bp.predict(site(), p1, None), Prediction::Taken);
        assert_eq!(bp.predict(site(), p2, None), Prediction::NotTaken);
    }

    #[test]
    fn unseen_path_falls_back_to_aggregate() {
        let mut bp = BranchPredictor::new(0.1);
        let seen = PathHistory::start().extend(3);
        for _ in 0..10 {
            bp.update(site(), seen, true);
        }
        let unseen = PathHistory::start().extend(4);
        assert_eq!(bp.predict(site(), unseen, None), Prediction::Taken);
    }

    /// The incrementally-maintained per-site aggregate must stay equal to
    /// a recomputation from scratch under interleaved updates across many
    /// sites and paths.
    #[test]
    fn cached_site_aggregate_matches_recomputation() {
        let mut bp = BranchPredictor::new(0.1);
        let sites = [
            BranchSite::Entry(0),
            BranchSite::Entry(1),
            BranchSite::Call { caller: 3, site: 0 },
        ];
        for i in 0..200u32 {
            let s = sites[(i % 3) as usize];
            let path = PathHistory::start().extend(i % 5);
            bp.update(s, path, i % 7 < 4);
            if i % 13 == 0 {
                // Interleave predictions; they must not disturb the cache.
                let _ = bp.predict(s, PathHistory::start().extend(99), None);
            }
        }
        for s in sites {
            assert_eq!(
                bp.site_totals.get(&s).copied().unwrap_or_default(),
                bp.recomputed_site_aggregate(s),
                "cached aggregate diverged for {s:?}"
            );
        }
    }

    #[test]
    fn oracle_mode_hits_requested_accuracy() {
        let bp = BranchPredictor::new(0.1);
        let mut rng = SimRng::seed(42);
        let n = 10_000;
        let mut correct = 0;
        for i in 0..n {
            let actual = i % 3 == 0;
            let pred = bp.predict(site(), PathHistory::start(), Some((actual, 0.9, &mut rng)));
            let predicted_taken = pred == Prediction::Taken;
            if predicted_taken == actual {
                correct += 1;
            }
        }
        let acc = correct as f64 / n as f64;
        assert!((acc - 0.9).abs() < 0.02, "oracle accuracy {acc}");
    }

    #[test]
    fn path_history_is_order_sensitive() {
        let a = PathHistory::start().extend(1).extend(2);
        let b = PathHistory::start().extend(2).extend(1);
        assert_ne!(a, b);
        assert_eq!(a, PathHistory::start().extend(1).extend(2));
    }

    #[test]
    fn call_sites_are_distinct() {
        let mut bp = BranchPredictor::new(0.1);
        let p = PathHistory::start();
        let s0 = BranchSite::Call { caller: 5, site: 0 };
        let s1 = BranchSite::Call { caller: 5, site: 1 };
        for _ in 0..10 {
            bp.update(s0, p, true);
            bp.update(s1, p, false);
        }
        assert_eq!(bp.predict(s0, p, None), Prediction::Taken);
        assert_eq!(bp.predict(s1, p, None), Prediction::NotTaken);
    }

    #[test]
    fn hit_rate_tracking() {
        let mut bp = BranchPredictor::new(0.1);
        bp.record_outcome(true);
        bp.record_outcome(true);
        bp.record_outcome(false);
        assert!((bp.hit_rate().rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
