//! Squashing (Â§VI, "Minimizing Squash Cost"), instance teardown,
//! slot-fault retries, watchdog timeouts and request aborts.
use super::*;

impl SpecCore {
    /// Squashes `first` and every later slot. `kind` decides whether
    /// `first` is reset in place (re-execute) or removed (wrong path).
    pub(super) fn squash_from(&mut self, req_id: RequestId, first: SlotId, kind: SquashKind) {
        let Some(req) = self.requests.get(&req_id) else {
            return;
        };
        let Some(pos) = req.pipeline.position(first) else {
            return;
        };
        let order: Vec<SlotId> = req.pipeline.iter_order().collect();
        let victims: Vec<SlotId> = order[pos..].to_vec();

        let cause = match kind {
            SquashKind::WrongPath => SquashCause::WrongPath,
            SquashKind::WrongInput => SquashCause::WrongInput,
            SquashKind::Violation => SquashCause::Violation,
            SquashKind::Fault => SquashCause::Fault,
        };
        let cascade = victims.len() as u32;
        if self.rt.tracer.enabled() {
            let now = self.rt.sim.now();
            self.rt.tracer.emit(
                now,
                TraceEventKind::Squash {
                    req: req_id.0,
                    slot: first.0,
                    cause,
                    cascade,
                },
            );
        }
        self.rt
            .registry
            .inc_labeled("specfaas_squashes_total", "cause", cause.name());
        // Dependents torn down because a committed-path execution
        // faulted (not because speculation was wrong).
        if kind == SquashKind::Fault {
            self.rt.metrics.faults.squashed_due_to_fault += victims.len() as u64 - 1;
        }
        // Fork-branch heads are spawned exactly once, at their fork's
        // commit (extend_one defers fan-out). A head caught in the squash
        // suffix is a *parallel* sibling, not a dependent: removing it
        // would lose it forever and starve the join, so reset it in place
        // instead.
        let mut fork_heads: FxHashSet<usize> = FxHashSet::default();
        for i in 0..self.seqtable.compiled().entries.len() {
            if let EntryKind::Fork { branches, .. } = self.seqtable.kind_at(i) {
                fork_heads.extend(branches.iter().copied());
            }
        }
        for (i, v) in victims.iter().enumerate() {
            let req = self.requests.get(&req_id).expect("live");
            let is_fork_head = matches!(
                req.pipeline.slot(*v).map(|s| s.role),
                Some(SlotRole::Entry { entry }) if fork_heads.contains(&entry)
            );
            let reset_in_place = (i == 0 && kind != SquashKind::WrongPath) || is_fork_head;
            self.squash_slot(req_id, *v, reset_in_place, cause.name(), cascade);
        }
        // Callers waiting on removed callees: their Call will be
        // re-issued when the caller (also squashed) re-executes, or the
        // callee slot is respawned on demand. Clean any dangling waits.
        let req = self.requests.get_mut(&req_id).expect("live");
        req.waiting_callers
            .retain(|callee, _| req.pipeline.slot(*callee).is_some());
        req.stalled_reads
            .retain(|sr| req.pipeline.slot(sr.slot).is_some());
        if kind == SquashKind::Fault {
            // A removed dependent may have been the created program-order
            // successor of a *surviving* entry slot (a faulted callee's
            // caller, say). Victims form a strict suffix, so only the last
            // surviving entry slot can be affected: clear its extension
            // mark so the successor is recreated. Re-extending a
            // terminally-extended slot just re-marks it, so this is safe
            // even when nothing was lost.
            let order: Vec<SlotId> = req.pipeline.iter_order().collect();
            if let Some(&last_entry) = order.iter().rev().find(|s| {
                matches!(
                    req.pipeline.slot(**s).expect("live").role,
                    SlotRole::Entry { .. }
                )
            }) {
                req.extended.remove(&last_entry);
            }
        }
        self.pump(req_id);
    }

    pub(super) fn squash_slot(
        &mut self,
        req_id: RequestId,
        slot_id: SlotId,
        reset_in_place: bool,
        site: &'static str,
        cascade: u32,
    ) {
        let req = self.requests.get_mut(&req_id).expect("live");
        let Some(func) = req.pipeline.slot(slot_id).map(|s| s.func) else {
            return;
        };
        req.functions_squashed += 1;
        req.buffer.squash(slot_id);
        req.extended.remove(&slot_id);
        req.deferred_http.remove(&slot_id);
        req.call_state.remove(&slot_id);
        req.call_records.remove(&slot_id);
        let wasted = req.slot_cpu.remove(&slot_id);
        let inst = req.slot_inst.remove(&slot_id);
        // CPU spent on a now-squashed execution is wasted work.
        if let Some(t) = wasted {
            self.charge_squashed(req_id, func, site, cascade, t);
        }
        // Kill the running instance per the configured mechanism.
        if let Some(inst_id) = inst {
            self.kill_instance(inst_id, req_id, site, cascade);
        }
        let req = self.requests.get_mut(&req_id).expect("live");
        if reset_in_place {
            let slot = req.pipeline.slot_mut(slot_id).expect("live");
            slot.state = SlotState::Created;
            slot.output = None;
            slot.predicted_output = None;
            slot.predicted_taken = None;
            slot.learned_calls.clear();
            // input/input_speculative left to the caller to fix up.
            self.refresh_prediction(req_id, slot_id);
        } else {
            req.pipeline.remove(slot_id);
        }
    }

    /// Applies the configured squash mechanism to a live instance.
    /// `site`/`cascade` label the squash for wasted-CPU attribution.
    pub(super) fn kill_instance(
        &mut self,
        id: InstanceId,
        req_id: RequestId,
        site: &'static str,
        cascade: u32,
    ) {
        let now = self.rt.sim.now();
        let Some(inst) = self.instances.get(&id) else {
            return;
        };
        let (inst_state, inst_node, inst_func, inst_started, inst_acc) = (
            inst.state,
            inst.node,
            inst.func,
            inst.started_at,
            inst.accumulated_core,
        );
        let meta_acquired = self
            .meta
            .get(&id)
            .map(|m| m.container_acquired)
            .unwrap_or(false);
        match self.config.squash {
            SquashMechanism::Lazy => {
                // Let it run to completion in the background; outputs are
                // never propagated. Blocked instances wait on callees
                // that are themselves being squashed — they cannot make
                // progress and terminate instead (their container frees).
                self.meta.remove(&id);
                if matches!(
                    inst_state,
                    InstanceState::Running
                        | InstanceState::ColdStarting
                        | InstanceState::WaitingCore
                ) {
                    self.orphans.insert(id);
                } else {
                    if inst_state == InstanceState::Blocked {
                        self.charge_squashed(req_id, inst_func, site, cascade, inst_acc);
                        if meta_acquired {
                            self.rt
                                .cluster
                                .release_container(inst_node, inst_func, now, true);
                        }
                    }
                    self.instances.remove(&id);
                }
            }
            SquashMechanism::ProcessKill | SquashMechanism::ContainerKill => {
                let reusable = self.config.squash == SquashMechanism::ProcessKill;
                match inst_state {
                    InstanceState::Running => {
                        // The handler dies after the kill latency; the core
                        // frees then. Wasted-CPU attribution happens now
                        // (matching the paper's squash-cost accounting);
                        // the kill-latency window itself goes into
                        // `squash_kill_busy` at SquashRelease.
                        if let Some(s) = inst_started {
                            self.charge_squashed(
                                req_id,
                                inst_func,
                                site,
                                cascade,
                                (now - s) + inst_acc,
                            );
                        }
                        if self.rt.tracer.enabled() {
                            if let (Some(s), Some(m)) = (inst_started, self.meta.get(&id)) {
                                self.rt.tracer.emit(
                                    s,
                                    TraceEventKind::Span {
                                        req: m.req.0,
                                        func: inst_func.0,
                                        node: inst_node.0 as u32,
                                        phase: Phase::Execution,
                                        end: now + self.rt.model.process_kill,
                                    },
                                );
                            }
                        }
                        self.rt.sim.schedule_in(
                            self.rt.model.process_kill,
                            Ev::SquashRelease(id, reusable),
                        );
                        // Remove from maps now so stale Resume events are
                        // ignored; keep the instance for resource release.
                        self.meta.remove(&id);
                        if let Some(i) = self.instances.get_mut(&id) {
                            i.state = InstanceState::Squashed;
                        }
                    }
                    InstanceState::WaitingCore => {
                        // Past blocked stints are wasted work even though
                        // the instance holds no core right now.
                        self.charge_squashed(req_id, inst_func, site, cascade, inst_acc);
                        self.rt
                            .cluster
                            .node_mut(inst_node)
                            .cores
                            .remove_waiter(|w| *w == id);
                        if meta_acquired {
                            self.rt
                                .cluster
                                .release_container(inst_node, inst_func, now, reusable);
                        }
                        self.meta.remove(&id);
                        self.instances.remove(&id);
                    }
                    InstanceState::Blocked => {
                        // Holds no core; count its past stints as wasted
                        // and free the container after the kill latency.
                        self.charge_squashed(req_id, inst_func, site, cascade, inst_acc);
                        self.meta.remove(&id);
                        self.instances.remove(&id);
                        if meta_acquired {
                            self.rt
                                .cluster
                                .release_container(inst_node, inst_func, now, reusable);
                        }
                    }
                    InstanceState::ColdStarting => {
                        // Container creation already ran to completion in
                        // the model's accounting; return it to the pool.
                        self.meta.remove(&id);
                        self.instances.remove(&id);
                        if meta_acquired {
                            self.rt
                                .cluster
                                .release_container(inst_node, inst_func, now, true);
                        }
                    }
                    _ => {
                        self.meta.remove(&id);
                        self.instances.remove(&id);
                    }
                }
            }
        }
    }

    pub(super) fn on_squash_release(&mut self, id: InstanceId, reusable: bool) {
        let now = self.rt.sim.now();
        let Some(inst) = self.instances.remove(&id) else {
            return;
        };
        // The stint up to the kill was already charged to
        // squashed_core_time by `kill_instance`; the core stayed busy for
        // the kill latency since then, which only the conservation ledger
        // sees.
        if inst.started_at.is_some() {
            self.squash_kill_busy += self.rt.model.process_kill;
        }
        self.release_instance_resources(&inst, reusable, now);
    }

    pub(super) fn release_instance_resources(
        &mut self,
        inst: &FnInstance,
        reusable: bool,
        now: SimTime,
    ) {
        if inst.started_at.is_some() {
            if let Some(next) = self.rt.cluster.node_mut(inst.node).cores.release(now) {
                self.grant_core(next, now);
            }
        }
        self.rt
            .cluster
            .release_container(inst.node, inst.func, now, reusable);
    }

    /// Steps a lazily-squashed orphan instance: effects proceed against
    /// committed global state, writes are dropped, calls resolve to Null.
    pub(super) fn orphan_step(&mut self, id: InstanceId, resume: Option<Value>) {
        let now = self.rt.sim.now();
        let mut inst = self.instances.remove(&id).expect("orphan live");
        let effect = match inst.step(resume) {
            Ok(e) => e,
            Err(_) => Effect::Done(Value::Null),
        };
        match effect {
            Effect::Compute(d) => {
                self.instances.insert(id, inst);
                self.rt.sim.schedule_in(d, Ev::Resume(id, None));
            }
            Effect::Get { key } => {
                let v = self.rt.kv.get(&key).cloned().unwrap_or(Value::Null);
                self.instances.insert(id, inst);
                self.rt.registry.inc("specfaas_kv_reads_total");
                if self.rt.registry.enabled() {
                    self.rt
                        .kv_pending
                        .push(Reverse(now + self.rt.kv.latency().read));
                }
                self.rt
                    .sim
                    .schedule_in(self.rt.kv.latency().read, Ev::Resume(id, Some(v)));
            }
            Effect::Set { .. } => {
                // Dropped: squashed state never propagates — but the
                // handler still waits out the write latency.
                self.instances.insert(id, inst);
                self.rt.registry.inc("specfaas_kv_writes_total");
                if self.rt.registry.enabled() {
                    self.rt
                        .kv_pending
                        .push(Reverse(now + self.rt.kv.latency().write));
                }
                self.rt
                    .sim
                    .schedule_in(self.rt.kv.latency().write, Ev::Resume(id, None));
            }
            Effect::Http { .. } => {
                // Never performed for squashed functions.
                self.instances.insert(id, inst);
                self.rt.sim.schedule_now(Ev::Resume(id, None));
            }
            Effect::FileWrite { name, data } => {
                inst.files.insert(name, data);
                self.instances.insert(id, inst);
                self.rt.sim.schedule_now(Ev::Resume(id, None));
            }
            Effect::FileRead { name } => {
                let v = inst.files.get(&name).cloned().unwrap_or(Value::Null);
                self.instances.insert(id, inst);
                self.rt.sim.schedule_now(Ev::Resume(id, Some(v)));
            }
            Effect::Call { .. } => {
                self.instances.insert(id, inst);
                self.rt.sim.schedule_in(
                    self.rt.model.transfer_fixed,
                    Ev::Resume(id, Some(Value::Null)),
                );
            }
            Effect::Done(_) => {
                self.orphans.remove(&id);
                // Everything this orphan ever ran was wasted: its final
                // stint plus any stints accumulated while it was blocked
                // before being squashed. The owning request is unknown by
                // now (lazy squash drops the metadata at kill time).
                let wasted = inst.accumulated_core
                    + inst
                        .started_at
                        .map(|s| now - s)
                        .unwrap_or(SimDuration::ZERO);
                self.charge_squashed(RequestId(u64::MAX), inst.func, "orphan_done", 0, wasted);
                self.release_instance_resources(&inst, true, now);
            }
        }
    }

    // ------------------------------------------------------------------
    // Fault handling: slot retries with backoff, request aborts
    // ------------------------------------------------------------------

    /// Force-removes an instance that died (crash, hang timeout,
    /// exhausted KV retries, or request abort), releasing whatever core
    /// slot, queue position and container it holds. Unlike
    /// `kill_instance` this ignores the configured squash mechanism: the
    /// handler is already dead, so even lazy squashing cannot keep it
    /// running. Its container is not reusable.
    pub(super) fn teardown_instance(&mut self, id: InstanceId) {
        let now = self.rt.sim.now();
        let meta = self.meta.remove(&id);
        let acquired = meta.as_ref().map(|m| m.container_acquired).unwrap_or(false);
        let meta_req = meta.map(|m| m.req);
        self.orphans.remove(&id);
        let Some(inst) = self.instances.remove(&id) else {
            return;
        };
        let charge_req = meta_req.unwrap_or(RequestId(u64::MAX));
        match inst.state {
            InstanceState::Running => {
                let wasted = inst.accumulated_core
                    + inst
                        .started_at
                        .map(|s| now - s)
                        .unwrap_or(SimDuration::ZERO);
                self.charge_squashed(charge_req, inst.func, "teardown", 0, wasted);
                if self.rt.tracer.enabled() {
                    if let (Some(s), Some(req)) = (inst.started_at, meta_req) {
                        self.rt.tracer.emit(
                            s,
                            TraceEventKind::Span {
                                req: req.0,
                                func: inst.func.0,
                                node: inst.node.0 as u32,
                                phase: Phase::Execution,
                                end: now,
                            },
                        );
                    }
                }
                if inst.started_at.is_some() {
                    if let Some(next) = self.rt.cluster.node_mut(inst.node).cores.release(now) {
                        self.grant_core(next, now);
                    }
                }
            }
            InstanceState::Blocked => {
                self.charge_squashed(charge_req, inst.func, "teardown", 0, inst.accumulated_core);
            }
            InstanceState::WaitingCore => {
                // Past blocked stints count as wasted work even though no
                // core is held at teardown time.
                self.charge_squashed(charge_req, inst.func, "teardown", 0, inst.accumulated_core);
                self.rt
                    .cluster
                    .node_mut(inst.node)
                    .cores
                    .remove_waiter(|w| *w == id);
            }
            _ => {}
        }
        if acquired {
            self.rt
                .cluster
                .release_container(inst.node, inst.func, now, false);
        }
    }

    /// The instance executing `slot_id` suffered an unrecoverable-in-
    /// place fault (container crash, hang timeout, or exhausted storage
    /// retries). The slot and every dependent are squashed; the slot
    /// relaunches after backoff — or the whole request aborts once its
    /// retry budget is exhausted.
    pub(super) fn slot_fault(&mut self, req_id: RequestId, slot_id: SlotId) {
        // The faulted handler is dead on the spot, not squash-killed.
        let inst = self
            .requests
            .get_mut(&req_id)
            .and_then(|r| r.slot_inst.remove(&slot_id));
        if let Some(inst_id) = inst {
            self.teardown_instance(inst_id);
        }
        let Some(req) = self.requests.get_mut(&req_id) else {
            return;
        };
        if req.pipeline.slot(slot_id).is_none() {
            return; // already squashed away
        }
        let failures = req.attempts.entry(slot_id).or_insert(0);
        *failures += 1;
        let failures = *failures;
        if failures >= self.rt.retry.max_attempts {
            self.abort_request(req_id);
            return;
        }
        // Hold the relaunch until the backoff elapses; squash the slot
        // (reset in place, keeping its input) and its dependents now.
        req.retry_hold.insert(slot_id);
        self.rt.metrics.faults.retried += 1;
        let backoff = self.rt.retry.backoff(failures);
        if self.rt.tracer.enabled() {
            let func = self
                .requests
                .get(&req_id)
                .and_then(|r| r.pipeline.slot(slot_id))
                .map(|s| s.func.0)
                .unwrap_or(u32::MAX);
            let now = self.rt.sim.now();
            self.rt.tracer.emit(
                now,
                TraceEventKind::RetryBackoff {
                    req: req_id.0,
                    func,
                    attempt: failures + 1,
                    backoff,
                },
            );
        }
        self.squash_from(req_id, slot_id, SquashKind::Fault);
        self.rt
            .sim
            .schedule_in(backoff, Ev::RetrySlot(req_id, slot_id));
    }

    /// Backoff elapsed: the held slot may launch again (it was reset in
    /// place by the fault squash, so the ordinary pump relaunches it).
    pub(super) fn on_retry_slot(&mut self, req_id: RequestId, slot_id: SlotId) {
        let Some(req) = self.requests.get_mut(&req_id) else {
            return;
        };
        req.retry_hold.remove(&slot_id);
        if self.rt.tracer.enabled() {
            let now = self.rt.sim.now();
            self.rt.tracer.emit(
                now,
                TraceEventKind::Replay {
                    req: req_id.0,
                    slot: slot_id.0,
                },
            );
        }
        self.pump(req_id);
    }

    /// Invocation watchdog: a handler still live past the timeout is
    /// treated as hung and goes through the slot fault path. A blocked
    /// handler (legitimately waiting on a callee, stall, or deferred
    /// side effect) gets its watchdog re-armed instead of killed.
    pub(super) fn on_timeout(&mut self, id: InstanceId) {
        if self.orphans.contains(&id) {
            return;
        }
        let Some(meta) = self.meta.get(&id) else {
            return;
        };
        let (req_id, slot_id) = (meta.req, meta.slot);
        let Some(inst) = self.instances.get(&id) else {
            return;
        };
        match inst.state {
            InstanceState::Done | InstanceState::Squashed => {}
            InstanceState::Blocked => {
                if let Some(t) = self.rt.retry.invocation_timeout {
                    self.rt.sim.schedule_in(t, Ev::Timeout(id));
                }
            }
            _ => {
                self.rt.metrics.faults.timeouts += 1;
                self.rt
                    .registry
                    .inc_labeled("specfaas_faults_injected_total", "site", "timeout");
                if self.rt.tracer.enabled() {
                    let now = self.rt.sim.now();
                    self.rt.tracer.emit(
                        now,
                        TraceEventKind::FaultInjected {
                            req: req_id.0,
                            site: "timeout",
                        },
                    );
                }
                self.slot_fault(req_id, slot_id);
            }
        }
    }

    /// Terminally fails a request: tears down every instance still
    /// working for it, discards its speculative state, and records a
    /// [`RequestOutcome::Failed`]. Committed work (already flushed to
    /// global storage) stays, matching a real platform where a workflow
    /// aborts midway.
    pub(super) fn abort_request(&mut self, req_id: RequestId) {
        let now = self.rt.sim.now();
        let Some(req) = self.requests.remove(&req_id) else {
            return;
        };
        let mut victims: Vec<InstanceId> = req.slot_inst.values().copied().collect();
        victims.sort(); // HashMap order is not deterministic
        for id in victims {
            self.teardown_instance(id);
        }
        let mut wasted: Vec<(SlotId, SimDuration)> =
            req.slot_cpu.iter().map(|(s, t)| (*s, *t)).collect();
        wasted.sort_by_key(|(s, _)| *s); // HashMap order is not deterministic
        for (slot, t) in wasted {
            let func = req
                .pipeline
                .slot(slot)
                .map(|s| s.func)
                .unwrap_or(FuncId(u32::MAX));
            self.charge_squashed(req_id, func, "abort", 0, t);
        }
        if self.rt.tracer.enabled() {
            self.rt.tracer.emit(
                now,
                TraceEventKind::Terminal {
                    req: req_id.0,
                    completed: false,
                },
            );
        }
        self.rt.metrics.functions_squashed += u64::from(req.functions_squashed);
        self.rt.registry.inc("specfaas_requests_failed_total");
        if req.measured {
            self.rt.metrics.record_failure(InvocationRecord {
                arrived: req.arrived,
                completed: now,
                functions_run: req.functions_run,
                functions_squashed: req.functions_squashed,
                sequence: req.committed_sequence,
                outcome: RequestOutcome::Failed,
            });
        } else {
            self.rt.metrics.faults.aborted += 1;
        }
        // Closed loop: the client observes the failure and issues its
        // next request.
        harness::closed_loop_resubmit(self);
    }
}
