//! Instance event handling: launch, cold start, interpreter resume,
//! KV effects with fault retries, calls and HTTP gating (Â§V-C).
use super::*;

impl SpecCore {
    pub(super) fn on_launch(&mut self, id: InstanceId) {
        if self.orphans.contains(&id) {
            // Lazily squashed before launch resolved — treat as normal
            // container acquisition so resources balance.
        }
        let Some(meta) = self.meta.get_mut(&id) else {
            return; // killed before launch
        };
        meta.container_acquired = true;
        let req_id = meta.req;
        let inst = self.instances.get_mut(&id).expect("live instance");
        let node = inst.node;
        let func = inst.func;
        let now = self.rt.sim.now();
        match self
            .rt
            .cluster
            .acquire_container(node, func, now, &self.rt.model)
        {
            ContainerAcquire::Warm => {
                self.rt.registry.inc("specfaas_warm_starts_total");
                if self.rt.tracer.enabled() {
                    let now = self.rt.sim.now();
                    self.rt.tracer.emit(
                        now,
                        TraceEventKind::ContainerAcquire {
                            req: req_id.0,
                            func: func.0,
                            node: node.0 as u32,
                            cold: false,
                        },
                    );
                }
                self.try_start(id)
            }
            ContainerAcquire::Cold(d) => {
                self.rt.registry.inc("specfaas_cold_starts_total");
                let inst = self.instances.get_mut(&id).expect("live");
                inst.breakdown.container_creation = self.rt.model.container_creation;
                inst.breakdown.runtime_setup = self.rt.model.runtime_setup;
                inst.state = InstanceState::ColdStarting;
                if self.rt.tracer.enabled() {
                    let now = self.rt.sim.now();
                    self.rt.tracer.emit(
                        now,
                        TraceEventKind::ContainerAcquire {
                            req: req_id.0,
                            func: func.0,
                            node: node.0 as u32,
                            cold: true,
                        },
                    );
                    // Fig. 3 cold-start spans: container creation, then
                    // runtime setup for whatever remains of the delay.
                    let cc = if self.rt.model.container_creation < d {
                        self.rt.model.container_creation
                    } else {
                        d
                    };
                    self.rt.tracer.emit(
                        now,
                        TraceEventKind::Span {
                            req: req_id.0,
                            func: func.0,
                            node: node.0 as u32,
                            phase: Phase::ContainerCreation,
                            end: now + cc,
                        },
                    );
                    if cc < d {
                        self.rt.tracer.emit(
                            now + cc,
                            TraceEventKind::Span {
                                req: req_id.0,
                                func: func.0,
                                node: node.0 as u32,
                                phase: Phase::RuntimeSetup,
                                end: now + d,
                            },
                        );
                    }
                }
                self.rt.sim.schedule_in(d, Ev::ContainerReady(id));
            }
        }
    }

    pub(super) fn try_start(&mut self, id: InstanceId) {
        if !self.instances.contains_key(&id) {
            return;
        }
        let now = self.rt.sim.now();
        let inst = self.instances.get_mut(&id).expect("live");
        let node = inst.node;
        if self.rt.cluster.node_mut(node).cores.try_acquire(now) {
            inst.state = InstanceState::Running;
            inst.started_at = Some(now);
            self.rt.sim.schedule_now(Ev::Resume(id, None));
        } else {
            inst.state = InstanceState::WaitingCore;
            self.rt.cluster.node_mut(node).cores.enqueue(id);
        }
    }

    pub(super) fn on_resume(&mut self, id: InstanceId, resume: Option<Value>) {
        if !self.instances.contains_key(&id) {
            return; // killed
        }
        if self.orphans.contains(&id) {
            self.orphan_step(id, resume);
            return;
        }
        let Some(meta) = self.meta.get(&id) else {
            return; // squashed; awaiting SquashRelease
        };
        let (req_id, slot_id) = (meta.req, meta.slot);
        // A blocked instance must re-acquire an execution slot first.
        let now = self.rt.sim.now();
        if self
            .instances
            .get(&id)
            .map(|i| i.state == InstanceState::Blocked)
            .unwrap_or(false)
        {
            let inst = self.instances.get_mut(&id).expect("live");
            let node = inst.node;
            if self.rt.cluster.node_mut(node).cores.try_acquire(now) {
                let inst = self.instances.get_mut(&id).expect("live");
                inst.state = InstanceState::Running;
                inst.started_at = Some(now);
            } else {
                let inst = self.instances.get_mut(&id).expect("live");
                inst.pending_resume = Some(resume);
                inst.state = InstanceState::WaitingCore;
                self.rt.cluster.node_mut(node).cores.enqueue(id);
                return;
            }
        }
        // Fault injection at the step boundary: the handler's container
        // crashes, or the handler wedges (hang) and stops making progress.
        if self.rt.faults.enabled() {
            if self.rt.faults.roll(FaultSite::ContainerCrash, now) {
                self.rt.metrics.faults.injected += 1;
                self.rt.metrics.faults.crashes += 1;
                self.rt.registry.inc_labeled(
                    "specfaas_faults_injected_total",
                    "site",
                    "container_crash",
                );
                if self.rt.tracer.enabled() {
                    self.rt.tracer.emit(
                        now,
                        TraceEventKind::FaultInjected {
                            req: req_id.0,
                            site: "container_crash",
                        },
                    );
                }
                self.slot_fault(req_id, slot_id);
                return;
            }
            if self.rt.faults.roll(FaultSite::Hang, now) {
                self.rt.metrics.faults.injected += 1;
                self.rt.metrics.faults.hangs += 1;
                self.rt
                    .registry
                    .inc_labeled("specfaas_faults_injected_total", "site", "hang");
                if self.rt.tracer.enabled() {
                    self.rt.tracer.emit(
                        now,
                        TraceEventKind::FaultInjected {
                            req: req_id.0,
                            site: "hang",
                        },
                    );
                }
                // The wedged handler keeps its core and container but
                // schedules nothing further; only the invocation
                // watchdog (if configured) can recover it.
                return;
            }
        }
        let mut inst = self.instances.remove(&id).expect("live");
        let effect = match inst.step(resume) {
            Ok(e) => e,
            Err(err) => {
                let out = Value::map([("error", Value::str(err.to_string()))]);
                self.instances.insert(id, inst);
                self.complete_slot(req_id, slot_id, id, out);
                return;
            }
        };
        match effect {
            Effect::Compute(d) => {
                inst.breakdown.execution += d;
                self.instances.insert(id, inst);
                self.rt.sim.schedule_in(d, Ev::Resume(id, None));
            }
            Effect::Get { key } => {
                self.instances.insert(id, inst);
                self.handle_get(req_id, slot_id, id, key, 1);
            }
            Effect::Set { key, value } => {
                self.instances.insert(id, inst);
                self.handle_set(req_id, slot_id, id, key, value, 1);
            }
            Effect::Http { .. } => {
                self.instances.insert(id, inst);
                let req = self.requests.get(&req_id).expect("live");
                if Self::effectively_head(req, slot_id) {
                    self.rt
                        .sim
                        .schedule_in(self.rt.model.http_latency, Ev::Resume(id, None));
                } else {
                    // Deferred until the function turns non-speculative
                    // (§VI, "Side-effect Handling").
                    let req = self.requests.get_mut(&req_id).expect("live");
                    req.deferred_http.insert(slot_id, id);
                    self.block_instance(id);
                }
            }
            Effect::FileWrite { name, data } => {
                inst.files.insert(name, data);
                self.instances.insert(id, inst);
                self.rt.sim.schedule_now(Ev::Resume(id, None));
            }
            Effect::FileRead { name } => {
                let v = inst.files.get(&name).cloned().unwrap_or(Value::Null);
                self.instances.insert(id, inst);
                self.rt.sim.schedule_now(Ev::Resume(id, Some(v)));
            }
            Effect::Call { func, args } => {
                self.instances.insert(id, inst);
                self.handle_call(req_id, slot_id, id, &func, args);
            }
            Effect::Done(out) => {
                self.instances.insert(id, inst);
                self.complete_slot(req_id, slot_id, id, out);
            }
        }
    }

    /// Releases the instance's execution slot while it blocks (waiting
    /// on a callee, a stalled read, or a deferred side effect). A blocked
    /// handler process is descheduled by the OS; its container stays
    /// allocated.
    pub(super) fn block_instance(&mut self, id: InstanceId) {
        let now = self.rt.sim.now();
        let Some(inst) = self.instances.get_mut(&id) else {
            return;
        };
        if inst.state != InstanceState::Running {
            return;
        }
        if let Some(start) = inst.started_at.take() {
            inst.accumulated_core += now - start;
            if self.rt.tracer.enabled() {
                if let Some(m) = self.meta.get(&id) {
                    self.rt.tracer.emit(
                        start,
                        TraceEventKind::Span {
                            req: m.req.0,
                            func: inst.func.0,
                            node: inst.node.0 as u32,
                            phase: Phase::Execution,
                            end: now,
                        },
                    );
                }
            }
        }
        inst.state = InstanceState::Blocked;
        let node = inst.node;
        if let Some(next) = self.rt.cluster.node_mut(node).cores.release(now) {
            self.grant_core(next, now);
        }
    }

    /// Hands a freed slot to a queued instance and starts/resumes it.
    pub(super) fn grant_core(&mut self, next: InstanceId, now: SimTime) {
        if let Some(w) = self.instances.get_mut(&next) {
            w.state = InstanceState::Running;
            w.started_at = Some(now);
            let resume = w.pending_resume.take().unwrap_or(None);
            self.rt.sim.schedule_now(Ev::Resume(next, resume));
        }
    }

    /// Rolls for a transient KV fault on behalf of `id`. Returns true if
    /// a fault was injected and handled (retry scheduled or escalated);
    /// the storage operation must then not proceed.
    pub(super) fn kv_fault(
        &mut self,
        req_id: RequestId,
        slot_id: SlotId,
        id: InstanceId,
        op: KvOp,
        attempt: u32,
    ) -> bool {
        let site = match &op {
            KvOp::Get { .. } => FaultSite::KvGet,
            KvOp::Set { .. } => FaultSite::KvSet,
        };
        let now = self.rt.sim.now();
        if !self.rt.faults.enabled() || !self.rt.faults.roll(site, now) {
            return false;
        }
        self.rt.metrics.faults.injected += 1;
        self.rt.metrics.faults.kv_errors += 1;
        let fault_site = match &op {
            KvOp::Get { .. } => "kv_get",
            KvOp::Set { .. } => "kv_set",
        };
        self.rt
            .registry
            .inc_labeled("specfaas_faults_injected_total", "site", fault_site);
        if self.rt.tracer.enabled() {
            self.rt.tracer.emit(
                now,
                TraceEventKind::FaultInjected {
                    req: req_id.0,
                    site: fault_site,
                },
            );
        }
        if attempt >= self.rt.retry.max_attempts {
            // Storage retries exhausted: the whole execution faults.
            self.slot_fault(req_id, slot_id);
            return true;
        }
        let backoff = self.rt.retry.backoff(attempt);
        if let Some(inst) = self.instances.get_mut(&id) {
            inst.breakdown.retry_backoff += backoff;
        }
        if self.rt.tracer.enabled() {
            let func = self
                .instances
                .get(&id)
                .map(|i| i.func.0)
                .unwrap_or(u32::MAX);
            self.rt.tracer.emit(
                now,
                TraceEventKind::RetryBackoff {
                    req: req_id.0,
                    func,
                    attempt: attempt + 1,
                    backoff,
                },
            );
        }
        self.rt.metrics.faults.retried += 1;
        self.rt
            .sim
            .schedule_in(backoff, Ev::KvRetry(id, op, attempt + 1));
        true
    }

    /// Storage read through the Data Buffer (§V-C).
    pub(super) fn handle_get(
        &mut self,
        req_id: RequestId,
        slot_id: SlotId,
        id: InstanceId,
        key: String,
        attempt: u32,
    ) {
        if self.kv_fault(req_id, slot_id, id, KvOp::Get { key: key.clone() }, attempt) {
            return;
        }
        let lat = self.rt.kv.latency().read + self.rt.model.data_buffer_hop;
        let Some(req) = self.requests.get_mut(&req_id) else {
            return;
        };
        // The slot may have been squashed away while this operation was
        // in flight (kill latency); reads from dying executions are void.
        let Some(slot) = req.pipeline.slot(slot_id) else {
            return;
        };
        let my_func = slot.func;

        // Stall-list check (§V-C): if this (producer, consumer, record)
        // has squashed before, stall instead of reading prematurely.
        if self.config.stall_optimization {
            let producers = self.stall_list.producers_for(my_func, &key);
            if !producers.is_empty() {
                let my_pos = req.pipeline.position(slot_id).expect("live");
                let pending_producer = req.pipeline.iter_order().take(my_pos).find(|p| {
                    let s = req.pipeline.slot(*p).expect("live");
                    producers.contains(&s.func)
                        && s.state != SlotState::Completed
                        && !req.buffer.has_write(*p, &key)
                });
                if let Some(producer) = pending_producer {
                    req.stalled_reads.push(StalledRead {
                        slot: slot_id,
                        inst: id,
                        key,
                        producer,
                    });
                    self.stall_list.record_stall();
                    self.block_instance(id);
                    return;
                }
            }
        }
        let value = match req.buffer.read(slot_id, &key, &req.pipeline) {
            ReadResult::Forwarded(v) => v,
            ReadResult::Global => self.rt.kv.get(&key).cloned().unwrap_or(Value::Null),
        };
        if let Some(inst) = self.instances.get_mut(&id) {
            inst.breakdown.execution += lat;
        }
        self.rt.registry.inc("specfaas_kv_reads_total");
        if self.rt.registry.enabled() {
            self.rt.kv_pending.push(Reverse(self.rt.sim.now() + lat));
        }
        self.rt.sim.schedule_in(lat, Ev::Resume(id, Some(value)));
    }

    /// Storage write through the Data Buffer: buffered, with out-of-order
    /// RAW detection (§V-C).
    pub(super) fn handle_set(
        &mut self,
        req_id: RequestId,
        slot_id: SlotId,
        id: InstanceId,
        key: String,
        value: Value,
        attempt: u32,
    ) {
        let op = KvOp::Set {
            key: key.clone(),
            value: value.clone(),
        };
        if self.kv_fault(req_id, slot_id, id, op, attempt) {
            return;
        }
        let lat = self.rt.kv.latency().write + self.rt.model.data_buffer_hop;
        let Some(req) = self.requests.get_mut(&req_id) else {
            return;
        };
        // Writes from squashed-in-flight executions are void (§V-E).
        let Some(slot) = req.pipeline.slot(slot_id) else {
            return;
        };
        let my_func = slot.func;
        let victims = req.buffer.write(slot_id, &key, value, &req.pipeline);

        // Remember the producer→consumer pairs that squash (stall list).
        if let Some(first) = victims.first() {
            let consumer_func = req.pipeline.slot(*first).map(|s| s.func);
            if let Some(cf) = consumer_func {
                self.stall_list.record_squash(my_func, cf, &key);
            }
            let first = *first;
            self.squash_from(req_id, first, SquashKind::Violation);
        }

        // Release any stalled reads waiting for this producer+key.
        self.release_stalls(req_id, Some((slot_id, key)));

        if let Some(inst) = self.instances.get_mut(&id) {
            inst.breakdown.execution += lat;
        }
        self.rt.registry.inc("specfaas_kv_writes_total");
        if self.rt.registry.enabled() {
            self.rt.kv_pending.push(Reverse(self.rt.sim.now() + lat));
        }
        self.rt.sim.schedule_in(lat, Ev::Resume(id, None));
    }

    /// Re-resolves stalled reads whose producer wrote the record,
    /// completed, or disappeared.
    pub(super) fn release_stalls(&mut self, req_id: RequestId, wrote: Option<(SlotId, String)>) {
        let Some(req) = self.requests.get_mut(&req_id) else {
            return;
        };
        let mut released = Vec::new();
        req.stalled_reads.retain(|sr| {
            let producer_live = req.pipeline.slot(sr.producer).is_some();
            let producer_done = req
                .pipeline
                .slot(sr.producer)
                .map(|s| s.state == SlotState::Completed)
                .unwrap_or(true);
            let produced = req.buffer.has_write(sr.producer, &sr.key)
                || wrote
                    .as_ref()
                    .map(|(p, k)| *p == sr.producer && *k == sr.key)
                    .unwrap_or(false);
            if !producer_live || producer_done || produced {
                released.push((sr.slot, sr.inst, sr.key.clone()));
                false
            } else {
                true
            }
        });
        for (slot, inst, key) in released {
            // Re-issue the read, now past the stall window.
            if self.instances.contains_key(&inst) {
                self.handle_get(req_id, slot, inst, key, 1);
            }
        }
    }

    /// Implicit-workflow call: match against prefetched callees or spawn
    /// on demand (§V-D).
    pub(super) fn handle_call(
        &mut self,
        req_id: RequestId,
        caller_slot: SlotId,
        caller_inst: InstanceId,
        func_name: &str,
        args: Value,
    ) {
        let Some(callee_func) = self.app.registry.lookup(func_name) else {
            // Unknown callee: resolve as Null after an RPC hop.
            self.rt.sim.schedule_in(
                self.rt.model.transfer_fixed,
                Ev::Resume(caller_inst, Some(Value::Null)),
            );
            return;
        };
        let Some(req) = self.requests.get_mut(&req_id) else {
            return;
        };
        if req.pipeline.slot(caller_slot).is_none() {
            return; // caller squashed while the call was in flight
        }
        let cs = req.call_state.entry(caller_slot).or_default();
        let site = cs.cursor;
        cs.cursor += 1;

        // Drop leading prefetch entries whose slots were squashed away.
        while let Some(&h) = cs.prefetched.first() {
            if req.pipeline.slot(h).is_none() {
                cs.prefetched.remove(0);
            } else {
                break;
            }
        }
        // Is there a prefetched callee slot for this site?
        let prefetched = cs.prefetched.first().copied();
        if let Some(cslot) = prefetched {
            let matches = req
                .pipeline
                .slot(cslot)
                .map(|s| {
                    s.func == callee_func
                        && s.input.as_ref() == Some(&args)
                        && matches!(s.role, SlotRole::Callee { site: ps, .. } if ps == site)
                })
                .unwrap_or(false);
            if matches {
                let cs = req.call_state.get_mut(&caller_slot).expect("present");
                cs.prefetched.remove(0);
                let state = req.pipeline.slot(cslot).expect("live").state;
                if state == SlotState::Completed {
                    self.consume_callee(req_id, caller_slot, caller_inst, cslot);
                } else {
                    // Stall the caller until the callee completes (§V-D);
                    // the blocked caller yields its execution slot.
                    req.waiting_callers.insert(cslot, caller_slot);
                    req.waiting_args.insert(caller_slot, args);
                    self.block_instance(caller_inst);
                    // The callee may just have become the non-speculative
                    // execution point: release its deferred side effects.
                    self.release_deferred_http(req_id);
                }
                return;
            }
            // Mismatch: squash the wrong prefetch (and everything after).
            let cs = req.call_state.get_mut(&caller_slot).expect("present");
            cs.prefetched.remove(0);
            self.squash_from(req_id, cslot, SquashKind::WrongPath);
        }

        // Spawn the callee on demand (non-speculative input).
        let req = self.requests.get_mut(&req_id).expect("live");
        let caller_path = req.pipeline.slot(caller_slot).expect("live").path;
        let anchor = Self::block_end(req, caller_slot);
        let cslot = req.pipeline.insert_after(
            anchor,
            callee_func,
            SlotRole::Callee {
                caller: caller_slot,
                site,
            },
            caller_path,
        );
        {
            let s = req.pipeline.slot_mut(cslot).expect("fresh");
            s.input = Some(args.clone());
            s.non_speculative = self
                .app
                .registry
                .spec(callee_func)
                .annotations
                .non_speculative;
        }
        req.waiting_callers.insert(cslot, caller_slot);
        req.waiting_args.insert(caller_slot, args);
        let launchable = {
            let req = self.requests.get(&req_id).expect("live");
            let slot = req.pipeline.slot(cslot).expect("live");
            !slot.non_speculative || req.pipeline.is_head(cslot)
        };
        self.block_instance(caller_inst);
        if launchable {
            self.launch_slot(req_id, cslot);
        }
        self.release_deferred_http(req_id);
    }

    /// True when `slot` is non-speculative in the paper's sense: it is
    /// the pipeline head, or it is a callee whose entire caller chain is
    /// head-and-blocked-waiting on it (§V-D: the caller stalls at the
    /// call site, so the callee is the actual execution point).
    pub(super) fn effectively_head(req: &Req, slot: SlotId) -> bool {
        let mut cur = slot;
        loop {
            if req.pipeline.is_head(cur) {
                return true;
            }
            let Some(s) = req.pipeline.slot(cur) else {
                return false;
            };
            match s.role {
                SlotRole::Callee { caller, .. }
                    if req.waiting_callers.get(&cur) == Some(&caller) =>
                {
                    cur = caller;
                }
                _ => return false,
            }
        }
    }

    /// The top-level entry slot a callee ultimately works for (walks the
    /// caller chain).
    pub(super) fn entry_ancestor(req: &Req, slot: SlotId) -> Option<SlotId> {
        let mut cur = slot;
        loop {
            let s = req.pipeline.slot(cur)?;
            match s.role {
                SlotRole::Entry { .. } => return Some(cur),
                SlotRole::Callee { caller, .. } => cur = caller,
            }
        }
    }

    /// Resumes any deferred side effects whose slot has become
    /// effectively non-speculative.
    pub(super) fn release_deferred_http(&mut self, req_id: RequestId) {
        let Some(req) = self.requests.get(&req_id) else {
            return;
        };
        let ready: Vec<(SlotId, InstanceId)> = req
            .deferred_http
            .iter()
            .filter(|(slot, _)| Self::effectively_head(req, **slot))
            .map(|(s, i)| (*s, *i))
            .collect();
        let req = self.requests.get_mut(&req_id).expect("live");
        for (slot, inst) in ready {
            req.deferred_http.remove(&slot);
            self.rt
                .sim
                .schedule_in(self.rt.model.http_latency, Ev::Resume(inst, None));
        }
    }

    /// Folds a completed callee into its caller: merge Data Buffer
    /// columns, record learning, remove the callee slot, resume the
    /// caller with the callee's output.
    pub(super) fn consume_callee(
        &mut self,
        req_id: RequestId,
        caller_slot: SlotId,
        caller_inst: InstanceId,
        callee_slot: SlotId,
    ) {
        let req = self.requests.get_mut(&req_id).expect("live");
        req.buffer.merge(callee_slot, caller_slot);
        let callee = req.pipeline.remove(callee_slot);
        req.extended.remove(&callee_slot);
        req.waiting_callers.remove(&callee_slot);
        req.waiting_args.remove(&caller_slot);
        let output = callee.output.clone().expect("completed callee");
        req.committed_sequence.push(callee.func.0);
        // The caller's memo row records its *direct* calls only.
        if let Some(caller) = req.pipeline.slot_mut(caller_slot) {
            caller.learned_calls.push((
                callee.func,
                callee.input.clone().expect("callee input"),
                output.clone(),
            ));
        }
        // Bubble the callee's own observation (with its direct callee
        // list) to the owning entry slot for commit-time promotion.
        if let Some(entry) = Self::entry_ancestor(req, caller_slot) {
            req.call_records.entry(entry).or_default().push(CallRecord {
                func: callee.func,
                input: callee.input.clone().expect("callee input"),
                output: output.clone(),
                callee_funcs: callee.learned_calls.iter().map(|(f, _, _)| *f).collect(),
                callee_inputs: callee
                    .learned_calls
                    .iter()
                    .map(|(_, i, _)| i.clone())
                    .collect(),
            });
        }
        req.call_state.remove(&callee_slot);
        // Move callee CPU accounting into the caller's bucket.
        if let Some(t) = req.slot_cpu.remove(&callee_slot) {
            *req.slot_cpu.entry(caller_slot).or_insert(SimDuration::ZERO) += t;
        }
        self.rt.sim.schedule_in(
            self.rt.model.data_buffer_hop,
            Ev::Resume(caller_inst, Some(output)),
        );
    }
}
