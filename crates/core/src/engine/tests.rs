use super::*;
use specfaas_platform::BaselineEngine;
use specfaas_sim::{FaultPlan, RetryPolicy, SimRng};
use specfaas_workflow::expr::*;
use specfaas_workflow::{FunctionRegistry, FunctionSpec, Program, Workflow};

fn chain_app(n: usize, exec_ms: u64) -> AppSpec {
    let mut reg = FunctionRegistry::new();
    let mut names = Vec::new();
    for i in 0..n {
        let name = format!("f{i}");
        reg.register(FunctionSpec::new(
            &name,
            Program::builder()
                .compute_ms(exec_ms)
                .ret(make_map([("v", add(field(input(), "v"), lit(1i64)))])),
        ));
        names.push(name);
    }
    AppSpec::new(
        "Chain",
        "Test",
        reg,
        Workflow::sequence(names.iter().map(Workflow::task).collect()),
    )
}

fn fresh_input(_: &mut SimRng) -> Value {
    Value::map([("v", Value::Int(0))])
}

#[test]
fn single_request_completes_correctly() {
    let mut e = SpecEngine::new(Arc::new(chain_app(4, 5)), SpecConfig::full(), 1);
    e.prewarm();
    let d = e.run_single(fresh_input(&mut SimRng::seed(0)));
    assert!(d > SimDuration::ZERO);
    let m = e.run_closed(0, fresh_input);
    assert_eq!(m.completed, 1);
    assert_eq!(m.records[0].sequence, vec![0, 1, 2, 3]);
}

#[test]
fn warmed_spec_is_faster_than_cold_spec() {
    let mut e = SpecEngine::new(Arc::new(chain_app(6, 5)), SpecConfig::full(), 1);
    e.prewarm();
    let first = e.run_single(fresh_input(&mut SimRng::seed(0)));
    // Tables now know input → output for every function.
    let second = e.run_single(fresh_input(&mut SimRng::seed(0)));
    assert!(
        second < first,
        "memoized run {second} should beat cold run {first}"
    );
}

#[test]
fn spec_beats_baseline_on_chains() {
    let app = Arc::new(chain_app(8, 8));
    let mut base = BaselineEngine::new(Arc::clone(&app), 1);
    base.prewarm();
    let base_d = base.run_single(fresh_input(&mut SimRng::seed(0)));

    let mut spec = SpecEngine::new(Arc::clone(&app), SpecConfig::full(), 1);
    spec.prewarm();
    spec.run_single(fresh_input(&mut SimRng::seed(0))); // train
    let spec_d = spec.run_single(fresh_input(&mut SimRng::seed(0)));
    let speedup = base_d / spec_d;
    assert!(
        speedup > 2.0,
        "expected >2x speedup, got {speedup:.2} ({base_d} vs {spec_d})"
    );
}

#[test]
fn memoization_off_still_correct() {
    let mut cfg = SpecConfig::full();
    cfg.memoization = false;
    let mut e = SpecEngine::new(Arc::new(chain_app(4, 5)), cfg, 1);
    e.prewarm();
    e.run_single(fresh_input(&mut SimRng::seed(0)));
    e.run_single(fresh_input(&mut SimRng::seed(0)));
    let m = e.run_closed(0, fresh_input);
    assert_eq!(m.completed, 2);
    for r in &m.records {
        assert_eq!(r.sequence, vec![0, 1, 2, 3]);
        assert_eq!(r.functions_squashed, 0);
    }
}

/// A branch app whose outcome depends on input data.
fn branch_app() -> AppSpec {
    let mut reg = FunctionRegistry::new();
    reg.register(FunctionSpec::new(
        "cond",
        Program::builder()
            .compute_ms(4)
            .ret(make_map([("ok", gt(field(input(), "x"), lit(10i64)))])),
    ));
    reg.register(FunctionSpec::new(
        "yes",
        Program::builder().compute_ms(4).ret(lit("yes")),
    ));
    reg.register(FunctionSpec::new(
        "no",
        Program::builder().compute_ms(4).ret(lit("no")),
    ));
    AppSpec::new(
        "Branchy",
        "Test",
        reg,
        Workflow::when_field(
            "cond",
            "ok",
            Workflow::task("yes"),
            Some(Workflow::task("no")),
        ),
    )
}

#[test]
fn branch_misprediction_squashes_and_recovers() {
    let mut e = SpecEngine::new(Arc::new(branch_app()), SpecConfig::full(), 1);
    e.prewarm();
    // Train: always taken.
    for _ in 0..5 {
        e.run_single(Value::map([("x", Value::Int(50))]));
    }
    // Now a not-taken input: predictor says taken, must squash "yes"
    // and run "no".
    e.run_single(Value::map([("x", Value::Int(5))]));
    let m = e.run_closed(0, fresh_input);
    let last = m.records.last().unwrap();
    let no = e.app().registry.lookup("no").unwrap().0;
    assert_eq!(*last.sequence.last().unwrap(), no);
    assert!(last.functions_squashed >= 1, "wrong path must be squashed");
}

#[test]
fn correct_prediction_overlaps_branch_target() {
    let mut e = SpecEngine::new(Arc::new(branch_app()), SpecConfig::full(), 1);
    e.prewarm();
    for _ in 0..5 {
        e.run_single(Value::map([("x", Value::Int(50))]));
    }
    let d = e.run_single(Value::map([("x", Value::Int(50))]));
    // cond (4ms) and yes (4ms) overlap: end-to-end well under the
    // serial 8ms + overheads.
    assert!(d < SimDuration::from_millis(16), "overlapped run took {d}");
    assert!(e.predictor().hit_rate().rate() > 0.8);
}

/// Producer writes a record that the consumer reads: out-of-order RAW
/// when speculated.
fn raw_dependence_app() -> AppSpec {
    let mut reg = FunctionRegistry::new();
    reg.register(FunctionSpec::new(
        "producer",
        Program::builder()
            .compute_ms(6)
            .set(lit("shared"), field(input(), "v"))
            .ret(make_map([("v", field(input(), "v"))])),
    ));
    reg.register(FunctionSpec::new(
        "consumer",
        Program::builder()
            .get(lit("shared"), "s")
            .compute_ms(4)
            .ret(make_map([("read", var("s"))])),
    ));
    AppSpec::new(
        "RawDep",
        "Test",
        reg,
        Workflow::sequence(vec![Workflow::task("producer"), Workflow::task("consumer")]),
    )
}

#[test]
fn data_violation_detected_and_output_correct() {
    let mut cfg = SpecConfig::full();
    cfg.stall_optimization = false; // isolate the squash path
    let mut e = SpecEngine::new(Arc::new(raw_dependence_app()), cfg, 1);
    e.prewarm();
    // Train with v=1 so memoization launches the consumer early on
    // the next identical request.
    e.run_single(Value::map([("v", Value::Int(1))]));
    // Same input again: the consumer launches speculatively and reads
    // "shared" before the producer's buffered write → out-of-order
    // RAW → squash → re-execution reads the forwarded value.
    e.run_single(Value::map([("v", Value::Int(1))]));
    let m = e.run_closed(0, fresh_input);
    assert_eq!(e.kv.peek("shared"), Some(&Value::Int(1)));
    assert!(
        m.records.last().unwrap().functions_squashed >= 1,
        "premature read should have been squashed"
    );
}

#[test]
fn stall_list_engages_after_repeated_squashes() {
    let mut cfg = SpecConfig::full();
    cfg.stall_after_squashes = 1;
    let mut e = SpecEngine::new(Arc::new(raw_dependence_app()), cfg, 1);
    e.prewarm();
    for _ in 0..6 {
        e.run_single(Value::map([("v", Value::Int(7))]));
    }
    assert!(
        e.stall_list().stalls_avoided() > 0,
        "stall list should have engaged"
    );
    // Once stalling, later runs squash nothing.
    e.run_single(Value::map([("v", Value::Int(7))]));
    let m = e.run_closed(0, fresh_input);
    assert_eq!(m.records.last().unwrap().functions_squashed, 0);
}

/// Implicit workflow: root calls two leaves.
fn implicit_app() -> AppSpec {
    let mut reg = FunctionRegistry::new();
    reg.register(FunctionSpec::new(
        "leaf1",
        Program::builder()
            .compute_ms(6)
            .ret(add(field(input(), "n"), lit(100i64))),
    ));
    reg.register(FunctionSpec::new(
        "leaf2",
        Program::builder()
            .compute_ms(6)
            .ret(add(field(input(), "n"), lit(200i64))),
    ));
    reg.register(FunctionSpec::new(
        "root",
        Program::builder()
            .compute_ms(2)
            .call("leaf1", make_map([("n", field(input(), "k"))]), "r1")
            .call("leaf2", make_map([("n", field(input(), "k"))]), "r2")
            .compute_ms(2)
            .ret(make_list([var("r1"), var("r2")])),
    ));
    AppSpec::new("Implicit", "Test", reg, Workflow::task("root"))
}

#[test]
fn implicit_callees_overlap_after_training() {
    let app = Arc::new(implicit_app());
    let mut e = SpecEngine::new(Arc::clone(&app), SpecConfig::full(), 1);
    e.prewarm();
    let inp = Value::map([("k", Value::Int(3))]);
    let cold = e.run_single(inp.clone());
    let warm = e.run_single(inp.clone());
    assert!(
        warm < cold,
        "prefetched callees should overlap: cold {cold}, warm {warm}"
    );
    // And the result must still be correct: leaves at 103 and 203.
    let m = e.run_closed(0, fresh_input);
    assert_eq!(m.records.len(), 2);
    assert_eq!(m.records[1].functions_squashed, 0);
}

/// An implicit root whose callee arguments depend on *global state*,
/// so memoized callee inputs can go stale.
fn stateful_implicit_app() -> AppSpec {
    let mut reg = FunctionRegistry::new();
    reg.register(FunctionSpec::new(
        "leaf",
        Program::builder()
            .compute_ms(6)
            .ret(add(field(input(), "n"), lit(100i64))),
    ));
    reg.register(FunctionSpec::new(
        "root",
        Program::builder()
            .compute_ms(2)
            .get(lit("mode"), "m")
            .call("leaf", make_map([("n", var("m"))]), "r")
            .ret(var("r")),
    ));
    AppSpec::new("StatefulImplicit", "Test", reg, Workflow::task("root"))
}

#[test]
fn implicit_wrong_callee_args_squash_and_recover() {
    let app = Arc::new(stateful_implicit_app());
    let mut e = SpecEngine::new(Arc::clone(&app), SpecConfig::full(), 1);
    e.prewarm();
    e.kv.set("mode", Value::Int(1));
    // Train: the memo row records callee input {n: 1}.
    e.run_single(Value::Null);
    e.run_single(Value::Null);
    // Flip the mode: the prefetched callee (args {n:1}) now
    // mismatches the actual call (args {n:2}) → squash + respawn.
    e.kv.set("mode", Value::Int(2));
    let d = e.run_single(Value::Null);
    assert!(d > SimDuration::ZERO);
    let m = e.run_closed(0, fresh_input);
    let rec = m.records.last().unwrap();
    assert!(rec.functions_squashed >= 1, "stale callee args must squash");
    // Committed sequence still has leaf then root.
    assert_eq!(rec.sequence.len(), 2);
}

#[test]
fn lazy_squash_wastes_more_cpu_than_process_kill() {
    let mk = |squash| {
        let mut cfg = SpecConfig::full();
        cfg.squash = squash;
        cfg.stall_optimization = false;
        let mut e = SpecEngine::new(Arc::new(branch_app()), cfg, 1);
        e.prewarm();
        // Train taken, then run many not-taken → constant squashes.
        for _ in 0..5 {
            e.run_single(Value::map([("x", Value::Int(50))]));
        }
        for _ in 0..10 {
            e.run_single(Value::map([("x", Value::Int(5))]));
        }
        let m = e.run_closed(0, fresh_input);
        m.squashed_core_time
    };
    let lazy = mk(SquashMechanism::Lazy);
    let kill = mk(SquashMechanism::ProcessKill);
    assert!(
        lazy > kill,
        "lazy squash should waste more CPU: lazy {lazy}, kill {kill}"
    );
}

#[test]
fn non_speculative_annotation_delays_launch() {
    let mut reg = FunctionRegistry::new();
    reg.register(FunctionSpec::new(
        "a",
        Program::builder()
            .compute_ms(5)
            .ret(make_map([("v", lit(1i64))])),
    ));
    reg.register(FunctionSpec::with_annotations(
        "careful",
        Program::builder()
            .compute_ms(5)
            .ret(make_map([("v", lit(2i64))])),
        specfaas_workflow::Annotations::non_speculative(),
    ));
    let app = AppSpec::new(
        "Annotated",
        "Test",
        reg,
        Workflow::sequence(vec![Workflow::task("a"), Workflow::task("careful")]),
    );
    let mut e = SpecEngine::new(Arc::new(app), SpecConfig::full(), 1);
    e.prewarm();
    e.run_single(Value::Null);
    let d = e.run_single(Value::Null);
    // No overlap possible: careful waits for a to commit. Response is
    // at least the serial execution time.
    assert!(d >= SimDuration::from_millis(10), "no overlap allowed: {d}");
    let m = e.run_closed(0, fresh_input);
    assert_eq!(m.records.last().unwrap().functions_squashed, 0);
}

#[test]
fn pure_function_skip_avoids_execution() {
    let mut reg = FunctionRegistry::new();
    reg.register(FunctionSpec::with_annotations(
        "pure",
        Program::builder()
            .compute_ms(50)
            .ret(make_map([("v", lit(7i64))])),
        specfaas_workflow::Annotations::pure_function(),
    ));
    reg.register(FunctionSpec::new(
        "sink",
        Program::builder().compute_ms(2).ret(field(input(), "v")),
    ));
    let app = Arc::new(AppSpec::new(
        "Pure",
        "Test",
        reg,
        Workflow::sequence(vec![Workflow::task("pure"), Workflow::task("sink")]),
    ));
    let mut cfg = SpecConfig::full();
    cfg.pure_function_skip = true;
    let mut e = SpecEngine::new(Arc::clone(&app), cfg, 1);
    e.prewarm();
    let first = e.run_single(Value::Null);
    let second = e.run_single(Value::Null);
    assert!(
        second < first / 2,
        "pure skip should avoid the 50ms body: first {first}, second {second}"
    );
}

#[test]
fn open_loop_load_completes() {
    let mut e = SpecEngine::new(Arc::new(chain_app(5, 5)), SpecConfig::full(), 9);
    e.prewarm();
    let m = e.run_open(
        100.0,
        SimDuration::from_secs(2),
        SimDuration::from_millis(200),
        fresh_input,
    );
    assert!(m.completed > 100, "completed only {}", m.completed);
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut e = SpecEngine::new(Arc::new(chain_app(5, 5)), SpecConfig::full(), 7);
        e.prewarm();
        e.run_single(fresh_input(&mut SimRng::seed(0)));
        e.run_single(fresh_input(&mut SimRng::seed(0))).as_micros()
    };
    assert_eq!(run(), run());
}

// ------------------------------------------------------------------
// Fault injection
// ------------------------------------------------------------------

#[test]
fn empty_fault_plan_is_bit_identical_to_disabled() {
    let run = |enable: bool| {
        let mut e = SpecEngine::new(Arc::new(chain_app(5, 5)), SpecConfig::full(), 7);
        if enable {
            e.enable_faults(FaultPlan::none(), RetryPolicy::default());
        }
        e.prewarm();
        let m = e.run_concurrent(
            4,
            SimDuration::from_secs(1),
            SimDuration::from_millis(100),
            fresh_input,
        );
        (
            m.completed,
            m.latency.mean_ms().to_bits(),
            m.squashed_core_time,
            m.useful_core_time,
        )
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn crash_faults_retry_and_recover() {
    let mut e = SpecEngine::new(Arc::new(chain_app(5, 5)), SpecConfig::full(), 2);
    e.enable_faults(
        FaultPlan::none().with_container_crash(0.10),
        RetryPolicy::default().with_max_attempts(10),
    );
    e.prewarm();
    let m = e.run_closed(20, fresh_input);
    assert_eq!(m.completed, 20, "all requests survive with retries");
    assert_eq!(m.failed, 0);
    assert!(m.faults.crashes > 0, "crash faults should have fired");
    assert_eq!(m.faults.crashes, m.faults.retried);
    // Every record still committed the full chain, in order.
    for r in &m.records {
        assert_eq!(r.sequence, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.outcome, RequestOutcome::Completed);
    }
}

#[test]
fn exhausted_retries_abort_with_failed_outcome() {
    let mut e = SpecEngine::new(Arc::new(chain_app(3, 5)), SpecConfig::full(), 1);
    e.enable_faults(
        FaultPlan::none().with_container_crash(1.0),
        RetryPolicy::default().with_max_attempts(2),
    );
    e.prewarm();
    let m = e.run_closed(3, fresh_input);
    assert_eq!(m.completed, 0, "every execution crashes");
    assert_eq!(m.failed, 3);
    assert!(m
        .records
        .iter()
        .all(|r| r.outcome == RequestOutcome::Failed));
    // Each aborted request burned its full retry budget.
    assert!(m.faults.crashes >= 3 * 2);
}

#[test]
fn kv_faults_retry_at_storage_level() {
    let mut e = SpecEngine::new(Arc::new(raw_dependence_app()), SpecConfig::full(), 1);
    e.enable_faults(
        FaultPlan::none().with_kv_get(0.3).with_kv_set(0.3),
        RetryPolicy::default().with_max_attempts(10),
    );
    e.prewarm();
    let m = e.run_closed(15, |_| Value::map([("v", Value::Int(1))]));
    assert_eq!(m.completed, 15);
    assert_eq!(m.failed, 0);
    assert!(m.faults.kv_errors > 0, "KV faults should have fired");
    assert!(m.faults.retried > 0);
    // The winning write still landed.
    assert_eq!(e.kv.peek("shared"), Some(&Value::Int(1)));
}

#[test]
fn hang_without_timeout_aborts_on_drain_instead_of_panicking() {
    let mut e = SpecEngine::new(Arc::new(chain_app(3, 5)), SpecConfig::full(), 1);
    e.enable_faults(FaultPlan::none().with_hang(1.0), RetryPolicy::default());
    e.prewarm();
    // The first handler wedges forever; with no invocation timeout the
    // simulation drains and the request is aborted, not panicked on.
    e.run_single(fresh_input(&mut SimRng::seed(0)));
    let m = e.run_closed(0, fresh_input);
    assert_eq!(m.failed, 1);
    assert!(m.faults.hangs >= 1);
    assert_eq!(m.records[0].outcome, RequestOutcome::Failed);
}

#[test]
fn watchdog_detects_hangs_and_retries() {
    let mut e = SpecEngine::new(Arc::new(chain_app(3, 5)), SpecConfig::full(), 1);
    // Hang only in a window covering the first execution; the retry
    // runs after the window closes and succeeds.
    e.enable_faults(
        FaultPlan::none()
            .with_hang(1.0)
            .with_window(SimTime::ZERO, Some(SimTime::from_millis(50))),
        RetryPolicy::default()
            .with_timeout(SimDuration::from_millis(100))
            .with_max_attempts(5),
    );
    e.prewarm();
    e.run_single(fresh_input(&mut SimRng::seed(0)));
    let m = e.run_closed(0, fresh_input);
    assert_eq!(m.completed, 1, "watchdog should rescue the hung request");
    assert!(m.faults.timeouts >= 1, "watchdog must have fired");
    assert!(m.faults.retried >= 1);
}

#[test]
fn slot_drops_only_delay_speculation() {
    let mut e = SpecEngine::new(Arc::new(chain_app(5, 5)), SpecConfig::full(), 2);
    e.enable_faults(
        FaultPlan::none().with_slot_drop(1.0),
        RetryPolicy::default(),
    );
    e.prewarm();
    let m = e.run_closed(5, fresh_input);
    // Dropping speculative slots costs performance, never correctness.
    assert_eq!(m.completed, 5);
    assert_eq!(m.failed, 0);
    assert!(m.faults.slot_drops > 0, "non-head launches should drop");
    for r in &m.records {
        assert_eq!(r.sequence, vec![0, 1, 2, 3, 4]);
    }
}

#[test]
fn fault_timeline_is_deterministic_per_seed() {
    let run = || {
        let mut e = SpecEngine::new(Arc::new(chain_app(5, 5)), SpecConfig::full(), 11);
        e.enable_faults(
            FaultPlan::none()
                .with_container_crash(0.15)
                .with_kv_get(0.1),
            RetryPolicy::default().with_max_attempts(8),
        );
        e.prewarm();
        let m = e.run_concurrent(
            3,
            SimDuration::from_secs(1),
            SimDuration::from_millis(100),
            fresh_input,
        );
        (m.completed, m.failed, m.faults)
    };
    assert_eq!(run(), run());
}

/// Wide fork/join: `src` fans out to `width` parallel branches whose
/// outputs join into `join` (which also reads a KV probe key), followed
/// by a two-function post-join chain — the shape the DAG suite stresses.
fn wide_join_app(width: usize) -> AppSpec {
    let mut reg = FunctionRegistry::new();
    reg.register(FunctionSpec::new(
        "src",
        Program::builder()
            .compute_ms(4)
            .ret(make_map([("v", field(input(), "v"))])),
    ));
    let mut branches = Vec::new();
    for i in 0..width {
        let name = format!("b{i}");
        reg.register(FunctionSpec::new(
            &name,
            Program::builder()
                .compute_ms(4)
                .set(lit(format!("part:{i}")), field(input(), "v"))
                .ret(make_map([(
                    "p",
                    add(mul(field(input(), "v"), lit(10i64)), lit(i as i64)),
                )])),
        ));
        branches.push(Workflow::task(name));
    }
    // The join's input is the Value::List of branch outputs in
    // declaration order; it also reads global state ("probe").
    let mut sum = lit(0i64);
    for i in 0..width {
        sum = add(sum, field(index(input(), lit(i as i64)), "p"));
    }
    reg.register(FunctionSpec::new(
        "join",
        Program::builder()
            .get(lit("probe"), "g")
            .compute_ms(4)
            .ret(make_map([("sum", add(sum, var("g")))])),
    ));
    reg.register(FunctionSpec::new(
        "t0",
        Program::builder()
            .compute_ms(4)
            .ret(make_map([("sum", add(field(input(), "sum"), lit(1i64)))])),
    ));
    reg.register(FunctionSpec::new(
        "t1",
        Program::builder()
            .compute_ms(4)
            .set(lit("final"), field(input(), "sum"))
            .ret(field(input(), "sum")),
    ));
    AppSpec::new(
        "WideJoin",
        "Test",
        reg,
        Workflow::sequence(vec![
            Workflow::task("src"),
            Workflow::parallel(branches),
            Workflow::task("join"),
            Workflow::task("t0"),
            Workflow::task("t1"),
        ]),
    )
}

/// Expected value of the `final` KV key for input `v` and probe `g`:
/// sum of branch products `10v+i`, plus the probe, plus t0's increment.
fn wide_join_expected(width: usize, v: i64, g: i64) -> i64 {
    (0..width as i64).map(|i| 10 * v + i).sum::<i64>() + g + 1
}

#[test]
fn wide_join_commits_branches_in_declaration_order() {
    let width = 6;
    let app = Arc::new(wide_join_app(width));
    let mut e = SpecEngine::new(Arc::clone(&app), SpecConfig::full(), 1);
    e.prewarm();
    e.kv.set("probe", Value::Int(100));
    e.run_single(Value::map([("v", Value::Int(3))]));
    let m = e.run_closed(0, fresh_input);
    assert_eq!(m.completed, 1);
    let ids: Vec<u32> = [
        "src", "b0", "b1", "b2", "b3", "b4", "b5", "join", "t0", "t1",
    ]
    .iter()
    .map(|n| app.registry.lookup(n).unwrap().0)
    .collect();
    assert_eq!(
        m.records[0].sequence, ids,
        "commit order must be declaration order: src, branches, join, tail"
    );
    assert_eq!(
        e.kv.peek("final"),
        Some(&Value::Int(wide_join_expected(width, 3, 100)))
    );
    for i in 0..width {
        assert_eq!(
            e.kv.peek(&format!("part:{i}")),
            Some(&Value::Int(3)),
            "branch {i}'s disjoint write must land"
        );
    }
}

#[test]
fn wide_join_memo_rows_learned_at_commit_only() {
    let app = Arc::new(wide_join_app(4));
    let mut e = SpecEngine::new(Arc::clone(&app), SpecConfig::full(), 1);
    e.prewarm();
    e.kv.set("probe", Value::Int(1));
    assert_eq!(e.memos().total_entries(), 0);
    let cold = e.run_single(Value::map([("v", Value::Int(2))]));
    // Every committed function — src, the four branches, the join, and
    // both tail functions — earns exactly one memo row.
    for name in ["src", "b0", "b1", "b2", "b3", "join", "t0", "t1"] {
        let f = app.registry.lookup(name).unwrap().0;
        assert_eq!(e.memos().table(f).len(), 1, "{name} should have a memo row");
    }
    // The warmed identical request overlaps the post-join chain.
    let warm = e.run_single(Value::map([("v", Value::Int(2))]));
    assert!(
        warm < cold,
        "warmed wide-join run {warm} should beat cold run {cold}"
    );
    let m = e.run_closed(0, fresh_input);
    assert_eq!(m.records.last().unwrap().functions_squashed, 0);
}

#[test]
fn stale_probe_invalidates_join_memo_and_cascades() {
    let width = 4;
    let app = Arc::new(wide_join_app(width));
    let mut e = SpecEngine::new(Arc::clone(&app), SpecConfig::full(), 1);
    e.prewarm();
    e.kv.set("probe", Value::Int(1));
    // Train: the join's memo row now predicts a sum that embeds probe=1.
    for _ in 0..3 {
        e.run_single(Value::map([("v", Value::Int(5))]));
    }
    let trained = e.run_closed(0, fresh_input);
    assert_eq!(
        trained.records.last().unwrap().functions_squashed,
        0,
        "training runs must be squash-free"
    );
    assert_eq!(trained.squashed_core_time, SimDuration::ZERO);

    // Mutate the probe behind the engine's back: the join's memoized
    // output is now stale, so the speculatively launched post-join
    // chain (t0 → t1) runs on a wrong input and must be squashed.
    e.kv.set("probe", Value::Int(41));
    e.run_single(Value::map([("v", Value::Int(5))]));
    let m = e.run_closed(0, fresh_input);
    let last = m.records.last().unwrap();
    assert!(
        last.functions_squashed >= 2,
        "stale join output should cascade through both tail functions, \
         squashed only {}",
        last.functions_squashed
    );
    assert!(
        m.squashed_core_time > SimDuration::ZERO,
        "squash cascade must charge the Table-IV wasted-CPU ledger"
    );
    // Recovery is exact: the re-executed chain saw the fresh probe.
    assert_eq!(
        e.kv.peek("final"),
        Some(&Value::Int(wide_join_expected(width, 5, 41)))
    );
}

#[test]
fn wide_join_final_state_matches_baseline() {
    let app = Arc::new(wide_join_app(5));
    let inputs: Vec<Value> = (0..8).map(|v| Value::map([("v", Value::Int(v))])).collect();

    let mut base = BaselineEngine::new(Arc::clone(&app), 7);
    base.prewarm();
    base.kv.set("probe", Value::Int(9));
    for i in &inputs {
        base.run_single(i.clone());
    }
    let mb = base.run_closed(0, fresh_input);

    let mut spec = SpecEngine::new(Arc::clone(&app), SpecConfig::full(), 7);
    spec.prewarm();
    spec.kv.set("probe", Value::Int(9));
    for i in &inputs {
        spec.run_single(i.clone());
    }
    let ms = spec.run_closed(0, fresh_input);

    assert_eq!(mb.completed, ms.completed);
    let dump = |kv: &specfaas_storage::KvStore| {
        let mut v: Vec<(String, String)> = kv
            .iter()
            .map(|(k, val)| (k.to_string(), format!("{val:?}")))
            .collect();
        v.sort();
        v
    };
    assert_eq!(dump(&base.kv), dump(&spec.kv));
    for (rb, rs) in mb.records.iter().zip(&ms.records) {
        let (mut sb, mut ss) = (rb.sequence.clone(), rs.sequence.clone());
        sb.sort_unstable();
        ss.sort_unstable();
        assert_eq!(sb, ss);
    }
}
