//! The pump: extending speculation along the predicted path,
//! launching ready slots and prefetching callees (paper Â§V-A/Â§V-D).
use super::*;

impl SpecCore {
    pub(super) fn pump(&mut self, req_id: RequestId) {
        if !self.requests.contains_key(&req_id) {
            return;
        }
        self.extend(req_id);
        self.launch_ready(req_id);
        self.release_deferred_http(req_id);
        self.try_commit(req_id);
        self.check_complete(req_id);
    }

    /// Fires the response once the workflow end has committed and no
    /// slots remain in flight (checked after every transition — slots can
    /// leave the pipeline outside the commit path, e.g. orphaned-callee
    /// cleanup).
    pub(super) fn check_complete(&mut self, req_id: RequestId) {
        let Some(req) = self.requests.get_mut(&req_id) else {
            return;
        };
        if req.end_committed && req.pipeline.is_empty() && !req.completed {
            req.completed = true;
            self.rt
                .sim
                .schedule_in(self.rt.model.response_return, Ev::Complete(req_id));
        }
    }

    /// The last slot of `anchor`'s descendant block (the anchor itself or
    /// its最later callee-descendants), after which a program-order
    /// successor belongs.
    pub(super) fn block_end(req: &Req, anchor: SlotId) -> SlotId {
        let mut block: FxHashSet<SlotId> = FxHashSet::default();
        block.insert(anchor);
        let mut last = anchor;
        let order: Vec<SlotId> = req.pipeline.iter_order().collect();
        let start = req.pipeline.position(anchor).expect("anchor live");
        for &s in &order[start + 1..] {
            let slot = req.pipeline.slot(s).expect("slot live");
            match slot.role {
                SlotRole::Callee { caller, .. } if block.contains(&caller) => {
                    block.insert(s);
                    last = s;
                }
                _ => break,
            }
        }
        last
    }

    /// Creates program-order successors for every unextended entry slot
    /// whose successor payload is (actually or speculatively) known.
    pub(super) fn extend(&mut self, req_id: RequestId) {
        let depth = self.config.effective_depth(self.rt.cluster.occupancy());
        loop {
            let Some(req) = self.requests.get(&req_id) else {
                return;
            };
            if req.pipeline.len() >= depth
                || req.pipeline.total_created() as usize >= self.config.max_slots_per_request
            {
                return;
            }
            // Find the first unextended entry slot (program order).
            let candidate = req
                .pipeline
                .iter_order()
                .find(|s| {
                    !req.extended.contains(s)
                        && matches!(
                            req.pipeline.slot(*s).expect("live").role,
                            SlotRole::Entry { .. }
                        )
                })
                .map(|s| {
                    let slot = req.pipeline.slot(s).expect("live");
                    let SlotRole::Entry { entry } = slot.role else {
                        unreachable!()
                    };
                    (s, entry)
                });
            let Some((slot_id, entry)) = candidate else {
                return;
            };
            if !self.extend_one(req_id, slot_id, entry) {
                return;
            }
        }
    }

    /// Attempts to create the successor of one entry slot. Returns true
    /// if extension made progress (successor created or slot marked
    /// terminally extended).
    pub(super) fn extend_one(&mut self, req_id: RequestId, slot_id: SlotId, entry: usize) -> bool {
        let kind = self.seqtable.kind_at(entry).clone();
        let req = self.requests.get(&req_id).expect("live request");
        let slot = req.pipeline.slot(slot_id).expect("live slot");
        let completed = slot.state == SlotState::Completed;
        let slot_input = slot.input.clone();
        let slot_output = slot.output.clone();
        let slot_path = slot.path;
        let slot_func = slot.func;
        let slot_input_spec = slot.input_speculative;
        let slot_pred_out = slot.predicted_output.clone();

        let (next_entry, payload, payload_spec, predicted_dir) = match kind {
            EntryKind::Simple { next } => {
                let Some(n) = next else {
                    self.mark_extended(req_id, slot_id);
                    return true;
                };
                // Join entries are speculation barriers: handled at commit.
                if self.seqtable.compiled().entries[n].join_arity > 1 {
                    self.mark_extended(req_id, slot_id);
                    return true;
                }
                if completed {
                    (n, slot_output.expect("completed has output"), false, None)
                } else if self.config.memoization {
                    match slot_pred_out {
                        Some(p) => (n, p, true, None),
                        None => return false, // stuck until completion
                    }
                } else {
                    return false;
                }
            }
            EntryKind::Branch {
                ref field,
                taken,
                not_taken,
            } => {
                let outcome = if completed {
                    Some(Self::branch_outcome(
                        slot_output.as_ref().expect("completed"),
                        field.as_deref(),
                    ))
                } else if !self.config.branch_prediction {
                    None
                } else {
                    self.predict_branch(entry, slot_path, slot_func, slot_input.as_ref())
                };
                let Some(dir) = outcome else { return false };
                let target = if dir { taken } else { not_taken };
                // Record the prediction on the branch slot (for later
                // validation) when it was actually a prediction.
                if !completed {
                    let req = self.requests.get_mut(&req_id).expect("live");
                    req.pipeline
                        .slot_mut(slot_id)
                        .expect("live")
                        .predicted_taken = Some(dir);
                    self.rt.registry.inc("specfaas_branch_predictions_total");
                    if self.rt.tracer.enabled() {
                        let now = self.rt.sim.now();
                        self.rt.tracer.emit(
                            now,
                            TraceEventKind::BranchPredict {
                                req: req_id.0,
                                taken: dir,
                            },
                        );
                    }
                }
                let Some(n) = target else {
                    // Predicted end of workflow: nothing to launch until
                    // the branch resolves.
                    self.mark_extended(req_id, slot_id);
                    return true;
                };
                if self.seqtable.compiled().entries[n].join_arity > 1 {
                    self.mark_extended(req_id, slot_id);
                    return true;
                }
                // Branch functions route, passing their input through.
                let payload = slot_input.clone().expect("slot has input");
                (
                    n,
                    payload,
                    slot_input_spec || !completed,
                    (!completed).then_some(dir),
                )
            }
            EntryKind::Fork { .. } => {
                // Conservative: parallel fan-out happens at commit.
                self.mark_extended(req_id, slot_id);
                return true;
            }
        };
        let _ = predicted_dir;

        // Create the successor slot after this slot's descendant block.
        let req = self.requests.get_mut(&req_id).expect("live request");
        let anchor = Self::block_end(req, slot_id);
        let func = self.seqtable.func_at(next_entry);
        let new_path = slot_path.extend(slot_func.0);
        let new_id = req.pipeline.insert_after(
            anchor,
            func,
            SlotRole::Entry { entry: next_entry },
            new_path,
        );
        let annotations = self.app.registry.spec(func).annotations;
        let pred_iter = req
            .pipeline
            .slot(slot_id)
            .map(|p| p.iteration + 1)
            .unwrap_or(0);
        {
            let s = req.pipeline.slot_mut(new_id).expect("fresh slot");
            s.input = Some(payload);
            s.input_speculative = payload_spec;
            s.non_speculative = annotations.non_speculative;
            if let SlotRole::Entry { entry: e } = s.role {
                if e <= entry {
                    s.iteration = pred_iter;
                }
            }
        }
        req.extended.insert(slot_id);
        // Memo-predict the new slot's own output so extension can continue.
        self.refresh_prediction(req_id, new_id);
        true
    }

    pub(super) fn mark_extended(&mut self, req_id: RequestId, slot_id: SlotId) {
        self.requests
            .get_mut(&req_id)
            .expect("live")
            .extended
            .insert(slot_id);
    }

    /// Looks up the memoization table for a slot's input and stores the
    /// predicted output on the slot.
    pub(super) fn refresh_prediction(&mut self, req_id: RequestId, slot_id: SlotId) {
        if !self.config.memoization {
            return;
        }
        let req = self.requests.get_mut(&req_id).expect("live");
        let Some(slot) = req.pipeline.slot_mut(slot_id) else {
            return;
        };
        let Some(input) = slot.input.clone() else {
            return;
        };
        let func = slot.func.0;
        let hit = if let Some(entry) = self.memos.table_mut(func).lookup(&input) {
            slot.predicted_output = Some(entry.output.clone());
            true
        } else {
            false
        };
        if hit {
            self.rt.registry.inc("specfaas_memo_hits_total");
            if self.rt.tracer.enabled() {
                let now = self.rt.sim.now();
                self.rt.tracer.emit(
                    now,
                    TraceEventKind::MemoHit {
                        req: req_id.0,
                        func,
                    },
                );
            }
        }
    }

    pub(super) fn branch_outcome(output: &Value, field: Option<&str>) -> bool {
        match field {
            Some(f) => output.get_field(f).map(Value::truthy).unwrap_or(false),
            None => output.truthy(),
        }
    }

    /// Predicts an unresolved branch, honouring forced-accuracy mode.
    pub(super) fn predict_branch(
        &mut self,
        entry: usize,
        path: PathHistory,
        func: FuncId,
        input: Option<&Value>,
    ) -> Option<bool> {
        let site = BranchSite::Entry(entry);
        let pred = if let Some(acc) = self.config.forced_branch_accuracy {
            let input = input?;
            let actual = self.oracle_outcome(entry, func, input)?;
            self.predictor
                .predict(site, path, Some((actual, acc, &mut self.rt.rng)))
        } else {
            self.predictor.predict(site, path, None)
        };
        match pred {
            Prediction::Taken => Some(true),
            Prediction::NotTaken => Some(false),
            Prediction::NoSpeculation => None,
        }
    }

    /// Omniscient evaluation of a branch condition function (used only by
    /// the forced-accuracy oracle of Fig. 14): runs the cond program
    /// functionally against a snapshot view of committed storage.
    pub(super) fn oracle_outcome(
        &mut self,
        entry: usize,
        func: FuncId,
        input: &Value,
    ) -> Option<bool> {
        let program: Program = self.app.registry.spec(func).program.clone();
        let mut scratch: FxHashMap<String, Value> = FxHashMap::default();
        // Seed reads lazily by pre-copying every key the store holds is
        // wasteful; instead run with an empty scratch and fall back to
        // committed values by pre-populating on demand is not possible
        // through the closure API, so copy the (small) store.
        for (k, v) in self.rt.kv.iter() {
            scratch.insert(k.to_owned(), v.clone());
        }
        let mut rng = self.rt.rng.split();
        let out = Interp::run_functional(
            &program,
            input.clone(),
            &mut scratch,
            &mut |_, _, _, _| Ok(Value::Null),
            &mut rng,
        )
        .ok()?;
        let field = match self.seqtable.kind_at(entry) {
            EntryKind::Branch { field, .. } => field.clone(),
            _ => None,
        };
        Some(Self::branch_outcome(&out, field.as_deref()))
    }

    /// Launches every launchable slot.
    pub(super) fn launch_ready(&mut self, req_id: RequestId) {
        let Some(req) = self.requests.get(&req_id) else {
            return;
        };
        let ready: Vec<SlotId> = req
            .pipeline
            .iter_order()
            .filter(|s| {
                let slot = req.pipeline.slot(*s).expect("live");
                slot.state == SlotState::Created
                    && slot.input.is_some()
                    && (!slot.non_speculative || req.pipeline.is_head(*s))
                    && !req.retry_hold.contains(s)
            })
            .collect();
        for s in ready {
            self.launch_slot(req_id, s);
        }
    }

    pub(super) fn launch_slot(&mut self, req_id: RequestId, slot_id: SlotId) {
        let now = self.rt.sim.now();
        // Slot-drop fault: the controller loses a *speculative* launch.
        // The launch is re-attempted after a redispatch delay — it must
        // not wait for the slot to reach the pipeline head, because an
        // implicit-workflow callee sits *behind* callers that block on
        // it (waiting for head would deadlock the request). Head
        // launches are never dropped, so re-attempts always terminate.
        if self.rt.faults.enabled() {
            let head = self
                .requests
                .get(&req_id)
                .map(|r| r.pipeline.is_head(slot_id))
                .unwrap_or(true);
            if !head && self.rt.faults.roll(FaultSite::SlotDrop, now) {
                self.rt.metrics.faults.injected += 1;
                self.rt.metrics.faults.slot_drops += 1;
                self.rt
                    .registry
                    .inc_labeled("specfaas_faults_injected_total", "site", "slot_drop");
                if self.rt.tracer.enabled() {
                    let func = self
                        .requests
                        .get(&req_id)
                        .and_then(|r| r.pipeline.slot(slot_id))
                        .map(|s| s.func.0)
                        .unwrap_or(u32::MAX);
                    self.rt.tracer.emit(
                        now,
                        TraceEventKind::FaultInjected {
                            req: req_id.0,
                            site: "slot_drop",
                        },
                    );
                    self.rt.tracer.emit(
                        now,
                        TraceEventKind::RetryBackoff {
                            req: req_id.0,
                            func,
                            attempt: 1,
                            backoff: self.rt.retry.backoff(1),
                        },
                    );
                }
                self.rt
                    .sim
                    .schedule_in(self.rt.retry.backoff(1), Ev::RetrySlot(req_id, slot_id));
                return;
            }
        }
        let (ctrl, func, input) = {
            let req = self.requests.get_mut(&req_id).expect("live");
            let slot = req.pipeline.slot_mut(slot_id).expect("live");
            slot.state = SlotState::Running;
            (req.ctrl, slot.func, slot.input.clone().expect("input"))
        };
        let annotations = self.app.registry.spec(func).annotations;
        let speculative = self
            .requests
            .get(&req_id)
            .map(|r| !r.pipeline.is_head(slot_id))
            .unwrap_or(false);
        if self.rt.tracer.enabled() {
            self.rt.tracer.emit(
                now,
                TraceEventKind::SlotLaunch {
                    req: req_id.0,
                    slot: slot_id.0,
                    func: func.0,
                    speculative,
                },
            );
        }

        // Pure-function skip (§V-B): on a memoization hit, skip execution
        // entirely. Disabled by default to match the paper's conservative
        // evaluation.
        if self.config.pure_function_skip && annotations.pure_function {
            if let Some(entry) = self.memos.table_mut(func.0).lookup(&input) {
                let output = entry.output.clone();
                let req = self.requests.get_mut(&req_id).expect("live");
                let slot = req.pipeline.slot_mut(slot_id).expect("live");
                slot.state = SlotState::Completed;
                slot.output = Some(output);
                req.functions_run += 1;
                self.rt.metrics.functions_started += 1;
                self.rt.registry.inc("specfaas_functions_started_total");
                self.rt
                    .topk_by_function("specfaas_requests_by_function", &self.app, func, 1);
                self.rt.registry.inc("specfaas_memo_hits_total");
                if self.rt.tracer.enabled() {
                    self.rt.tracer.emit(
                        now,
                        TraceEventKind::MemoHit {
                            req: req_id.0,
                            func: func.0,
                        },
                    );
                }
                self.on_slot_completed(req_id, slot_id);
                return;
            }
        }

        // Sequence-table fast path: no conductor, just a cheap controller
        // launch operation plus the fixed wire cost.
        let delay = self.rt.model.platform_fixed
            + self
                .rt
                .cluster
                .controller_delay(ctrl, now, self.rt.model.spec_launch_service);
        let id = InstanceId(self.rt.next_inst);
        self.rt.next_inst += 1;
        let node = self.rt.cluster.pick_node(func);
        let program = self.app.registry.spec(func).program.clone();
        let child_rng = self.rt.rng.split();
        let mut inst = FnInstance::new(id, func, node, &program, input, child_rng, now);
        inst.breakdown.platform = delay;
        self.instances.insert(id, inst);
        self.meta.insert(
            id,
            InstMeta {
                req: req_id,
                slot: slot_id,
                container_acquired: false,
            },
        );
        let req = self.requests.get_mut(&req_id).expect("live");
        req.slot_inst.insert(slot_id, id);
        req.functions_run += 1;
        self.rt.metrics.functions_started += 1;
        self.rt.registry.inc("specfaas_functions_started_total");
        self.rt
            .topk_by_function("specfaas_requests_by_function", &self.app, func, 1);
        if speculative && self.rt.registry.enabled() {
            self.spec_live.insert(id);
        }
        self.rt.sim.schedule_in(delay, Ev::Launch(id));
        // Invocation watchdog: the only recovery path for a hung handler.
        if let Some(t) = self.rt.retry.invocation_timeout {
            self.rt.sim.schedule_in(t, Ev::Timeout(id));
        }

        // Implicit-workflow callee prefetch (§V-D): launching f with a
        // memoized input row lets us launch its callees speculatively.
        self.prefetch_callees(req_id, slot_id);
    }

    /// Speculatively creates and launches the learned callees of a slot.
    pub(super) fn prefetch_callees(&mut self, req_id: RequestId, caller_slot: SlotId) {
        if !self.config.branch_prediction || !self.config.memoization {
            // For implicit workflows the two mechanisms only work together
            // (§VIII-B).
            return;
        }
        let depth = self.config.effective_depth(self.rt.cluster.occupancy());
        let (caller_func, caller_input, caller_path) = {
            let req = self.requests.get(&req_id).expect("live");
            let slot = req.pipeline.slot(caller_slot).expect("live");
            (slot.func, slot.input.clone(), slot.path)
        };
        let Some(input) = caller_input else { return };
        if !self.seqtable.knows_caller(caller_func) {
            return;
        }
        let Some(row) = self.memos.table(caller_func.0).peek(&input) else {
            return;
        };
        let callee_inputs = row.callee_inputs.clone();
        let edges: Vec<(usize, FuncId, f64)> = self
            .seqtable
            .callees_of(caller_func)
            .iter()
            .enumerate()
            .map(|(i, e)| (i, e.callee, self.seqtable.call_probability(caller_func, i)))
            .collect();

        let mut anchor = caller_slot;
        let mut created = Vec::new();
        for (site, callee, prob) in edges {
            if prob < 0.5 + self.config.branch_confidence_window {
                break; // stop prefetching at the first unlikely call
            }
            let Some(args) = callee_inputs.get(site).cloned() else {
                break;
            };
            let req = self.requests.get_mut(&req_id).expect("live");
            if req.pipeline.len() >= depth {
                break;
            }
            let path = caller_path.extend(caller_func.0);
            let id = req.pipeline.insert_after(
                anchor,
                callee,
                SlotRole::Callee {
                    caller: caller_slot,
                    site,
                },
                path,
            );
            {
                let s = req.pipeline.slot_mut(id).expect("fresh");
                s.input = Some(args);
                s.input_speculative = true;
                s.non_speculative = self.app.registry.spec(callee).annotations.non_speculative;
            }
            req.call_state
                .entry(caller_slot)
                .or_default()
                .prefetched
                .push(id);
            anchor = Self::block_end(req, id);
            created.push(id);
        }
        for id in created {
            // Launch unless annotation defers it.
            let launchable = {
                let req = self.requests.get(&req_id).expect("live");
                let slot = req.pipeline.slot(id).expect("live");
                slot.state == SlotState::Created
                    && (!slot.non_speculative || req.pipeline.is_head(id))
            };
            if launchable {
                self.launch_slot(req_id, id); // recursively prefetches
            }
        }
    }
}
