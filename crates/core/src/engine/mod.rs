//! The SpecFaaS engine: the speculative controller driving the platform
//! substrate (paper §V–§VI).
//!
//! Per application invocation the engine maintains a [`Pipeline`] of
//! program-ordered function slots and a [`DataBuffer`]. It repeatedly
//! picks the next function from the [`SequenceTable`] (predicting branch
//! outcomes and memoizing data dependences), launches it — possibly
//! speculatively — on the cluster, detects mispredictions and dependence
//! violations, squashes and re-launches offenders, and commits functions
//! strictly in order. Persistent structures (sequence table, branch
//! predictor, memoization tables, stall list) live across invocations and
//! are only ever updated with committed, non-speculative data (§V-E).

use std::cmp::Reverse;

use specfaas_sim::hash::{FxHashMap, FxHashSet};
use std::sync::Arc;

use specfaas_platform::cluster::NodeId;
use specfaas_platform::container::ContainerAcquire;
use specfaas_platform::exec::{FnInstance, InstanceId, InstanceState};
use specfaas_platform::metrics::{InvocationRecord, RequestOutcome, RunMetrics};
use specfaas_platform::workload::RequestId;
use specfaas_sim::trace::{Phase, SquashCause, TraceEventKind};
use specfaas_sim::FaultSite;
use specfaas_sim::{GaugeHandle, SimDuration, SimTime};
use specfaas_storage::Value;
use specfaas_workflow::{AppSpec, Effect, EntryKind, FuncId, Interp, Program};

use crate::config::{SpecConfig, SquashMechanism};
use crate::databuffer::{DataBuffer, ReadResult};
use crate::memo::MemoTables;
use crate::pipeline::{Pipeline, SlotId, SlotRole, SlotState};
use crate::predictor::{BranchPredictor, BranchSite, PathHistory, Prediction};
use crate::seqtable::SequenceTable;
use crate::stall::StallList;
use specfaas_platform::harness::{self, EngineCore, Harness, Runtime};

/// Events of the speculative engine. Only nameable as the
/// [`EngineCore::Ev`] associated type.
#[doc(hidden)]
#[derive(Debug)]
pub enum Ev {
    Arrival,
    /// Spec-launch overhead paid; acquire container + core.
    Launch(InstanceId),
    /// Cold start finished.
    ContainerReady(InstanceId),
    /// The instance's pending effect completed; step the interpreter.
    Resume(InstanceId, Option<Value>),
    /// Commit controller service finished; apply the commit.
    CommitApply(RequestId, SlotId),
    /// Process-kill / container-kill squash finished; release resources.
    SquashRelease(InstanceId, bool),
    /// Backoff after a transient KV fault elapsed; retry the operation.
    KvRetry(InstanceId, KvOp, u32),
    /// Backoff after a slot fault elapsed; the slot may relaunch.
    RetrySlot(RequestId, SlotId),
    /// Invocation watchdog fired for the instance.
    Timeout(InstanceId),
    /// Final response delivered.
    Complete(RequestId),
}

/// A storage operation being retried across transient KV faults.
#[doc(hidden)]
#[derive(Debug, Clone)]
pub enum KvOp {
    Get { key: String },
    Set { key: String, value: Value },
}

/// Why a squash happens (drives reset-vs-remove semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SquashKind {
    /// Control misprediction: wrong-path slots are removed outright.
    WrongPath,
    /// Data misprediction: the first victim re-executes with a corrected
    /// input; everything after it is removed.
    WrongInput,
    /// Data-dependence violation: the first victim re-executes with the
    /// same input (it will now read forwarded data); the rest is removed.
    Violation,
    /// Injected fault on the first victim's instance: it re-executes with
    /// the same input after backoff; dependents are removed and counted
    /// as squashed-due-to-fault.
    Fault,
}

#[derive(Debug, Default)]
struct CallState {
    /// Call-site cursor (how many calls the caller has issued).
    cursor: usize,
    /// Prefetched callee slots, in call order, not yet consumed.
    prefetched: Vec<SlotId>,
}

#[derive(Debug)]
struct StalledRead {
    slot: SlotId,
    inst: InstanceId,
    key: String,
    producer: SlotId,
}

/// A committed-knowledge record, applied to the persistent tables only
/// when the whole invocation completes (so speculative data never leaks
/// into them, §V-E).
#[derive(Debug)]
enum Learned {
    Memo {
        func: FuncId,
        input: Value,
        output: Value,
        callee_inputs: Vec<Value>,
    },
    Branch {
        entry: usize,
        path: PathHistory,
        taken: bool,
    },
    Calls {
        caller: FuncId,
        callees: Vec<FuncId>,
    },
}

/// A committed call observation bubbled up from a consumed callee:
/// its own input/output plus its *direct* callee list, promoted to the
/// persistent tables when the owning top-level entry slot commits.
#[derive(Debug)]
struct CallRecord {
    func: FuncId,
    input: Value,
    output: Value,
    callee_funcs: Vec<FuncId>,
    callee_inputs: Vec<Value>,
}

#[derive(Debug)]
struct Req {
    arrived: SimTime,
    ctrl: NodeId,
    measured: bool,
    pipeline: Pipeline,
    buffer: DataBuffer,
    slot_inst: FxHashMap<SlotId, InstanceId>,
    call_state: FxHashMap<SlotId, CallState>,
    /// Callee slot → caller slot blocked waiting for it.
    waiting_callers: FxHashMap<SlotId, SlotId>,
    /// Caller slot → callee args it is waiting to consume (revalidated on
    /// callee completion).
    waiting_args: FxHashMap<SlotId, Value>,
    stalled_reads: Vec<StalledRead>,
    /// Slots whose HTTP request is deferred until they are head.
    deferred_http: FxHashMap<SlotId, InstanceId>,
    /// Slots whose program-order successor has been created.
    extended: FxHashSet<SlotId>,
    /// Core-time consumed by completed-but-uncommitted slots.
    slot_cpu: FxHashMap<SlotId, SimDuration>,
    /// Fork-join contributions: join entry → (payloads by pipeline pos).
    fork_joins: FxHashMap<usize, Vec<Value>>,
    /// Call observations per top-level entry slot, promoted at commit.
    call_records: FxHashMap<SlotId, Vec<CallRecord>>,
    /// Commit currently being processed.
    committing: Option<SlotId>,
    /// Failed attempts per slot (fault-injection retry accounting).
    attempts: FxHashMap<SlotId, u32>,
    /// Slots whose relaunch is held until their retry backoff elapses.
    retry_hold: FxHashSet<SlotId>,
    learned: Vec<Learned>,
    committed_sequence: Vec<u32>,
    functions_run: u32,
    functions_squashed: u32,
    end_committed: bool,
    completed: bool,
}

struct InstMeta {
    req: RequestId,
    slot: SlotId,
    container_acquired: bool,
}

/// The SpecFaaS speculative execution engine for one application: a
/// generic [`Harness`] wrapped around the speculative [`SpecCore`].
///
/// # Example
///
/// ```no_run
/// use specfaas_core::{SpecEngine, SpecConfig};
/// # fn app() -> specfaas_workflow::AppSpec { unimplemented!() }
/// let mut engine = SpecEngine::new(std::sync::Arc::new(app()), SpecConfig::full(), 42);
/// engine.prewarm();
/// // Warm the predictor + memoization tables, then measure.
/// engine.run_closed(200, |_rng| specfaas_storage::Value::Null);
/// let metrics = engine.run_closed(100, |_rng| specfaas_storage::Value::Null);
/// println!("mean response: {:.2} ms", metrics.mean_response_ms());
/// ```
pub struct SpecEngine {
    harness: Harness<SpecCore>,
}

impl SpecEngine {
    /// Creates an engine for `app` on the paper's 5-node testbed.
    pub fn new(app: Arc<AppSpec>, config: SpecConfig, seed: u64) -> Self {
        SpecEngine {
            harness: Harness::new(SpecCore::new(app, config, seed)),
        }
    }
}

impl std::ops::Deref for SpecEngine {
    type Target = Harness<SpecCore>;
    fn deref(&self) -> &Self::Target {
        &self.harness
    }
}

impl std::ops::DerefMut for SpecEngine {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.harness
    }
}

/// The speculative engine core: SpecFaaS policy state (sequence table,
/// branch predictor, memoization tables, stall list, pipelines) layered
/// over the shared [`Runtime`]. Drive it through [`SpecEngine`] or any
/// [`Harness`]; on its own it only implements [`EngineCore`].
pub struct SpecCore {
    app: Arc<AppSpec>,
    /// Engine-agnostic runtime substrate (clock, RNG, cluster, storage,
    /// faults, tracer, registry, run bookkeeping).
    rt: Runtime<Ev>,
    /// Speculation policy.
    pub config: SpecConfig,
    /// Core time a dying handler keeps its core busy between the kill and
    /// its `SquashRelease` (the kill latency). Deliberately *not* part of
    /// [`RunMetrics::squashed_core_time`] (which reproduces the paper's
    /// wasted-CPU attribution at kill time); tracked here so the
    /// conservation invariant `useful + squashed == busy` still closes.
    squash_kill_busy: SimDuration,
    /// `squash_kill_busy` value at tracer install / last end-of-run check.
    kill_busy_base: SimDuration,
    /// Live instances whose launch was speculative (registry-gated;
    /// pruned lazily at sample time). Feeds the in-flight-speculation
    /// gauge without touching the unconditional instance bookkeeping.
    spec_live: FxHashSet<InstanceId>,
    /// Cached `(inflight_spec_slots, memo_entries)` gauge instruments
    /// ([`specfaas_sim::MetricsRegistry::sample_interned`]): per-event
    /// sampling without a registry map walk.
    spec_gauge_h: (Option<GaugeHandle>, Option<GaugeHandle>),
    seqtable: SequenceTable,
    predictor: BranchPredictor,
    memos: MemoTables,
    stall_list: StallList,
    instances: FxHashMap<InstanceId, FnInstance>,
    meta: FxHashMap<InstanceId, InstMeta>,
    /// Lazily squashed instances still running in the background.
    orphans: FxHashSet<InstanceId>,
    requests: FxHashMap<RequestId, Req>,
}

impl std::ops::Deref for SpecCore {
    type Target = Runtime<Ev>;
    fn deref(&self) -> &Self::Target {
        &self.rt
    }
}

impl std::ops::DerefMut for SpecCore {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.rt
    }
}

impl EngineCore for SpecCore {
    type Ev = Ev;
    // Lazy-squash orphans can still be live after the last closed-loop
    // request completes; the spec driver has always drained them so
    // their events cannot leak into a later run. (The baseline has no
    // background work and never drained here — the flag preserves both
    // behaviors bit-identically.)
    const DRAIN_ON_CLOSED: bool = true;

    fn rt(&self) -> &Runtime<Ev> {
        &self.rt
    }

    fn rt_mut(&mut self) -> &mut Runtime<Ev> {
        &mut self.rt
    }

    fn app(&self) -> &AppSpec {
        &self.app
    }

    fn arrival() -> Ev {
        Ev::Arrival
    }

    fn admit(&mut self, input: Value) -> RequestId {
        self.submit_request(input)
    }

    fn dispatch(&mut self, ev: Ev) {
        self.handle(ev);
    }

    fn request_live(&self, req: RequestId) -> bool {
        self.requests.contains_key(&req)
    }

    fn live_requests(&self) -> Vec<RequestId> {
        let mut live: Vec<RequestId> = self.requests.keys().copied().collect();
        live.sort(); // HashMap order is not deterministic
        live
    }

    fn abort(&mut self, req: RequestId) {
        self.abort_request(req);
    }

    fn live_instances(&self) -> usize {
        self.instances.len()
    }

    fn stuck_requests(&self) -> Vec<String> {
        let mut ids: Vec<RequestId> = self.requests.keys().copied().collect();
        ids.sort(); // HashMap order is not deterministic
        ids.into_iter()
            .map(|rid| {
                let req = &self.requests[&rid];
                let slots: Vec<String> = req
                    .pipeline
                    .iter_order()
                    .map(|sid| {
                        let sl = req.pipeline.slot(sid).expect("live");
                        format!(
                            "{sid}:{:?}:{:?}(in={} spec={})",
                            sl.func,
                            sl.state,
                            sl.input.is_some(),
                            sl.input_speculative
                        )
                    })
                    .collect();
                format!(
                    "req {:?}: committing={:?} end={} slots=[{}] waiting={:?} stalls={} defhttp={} waitargs={:?}",
                    rid.0,
                    req.committing,
                    req.end_committed,
                    slots.join(", "),
                    req.waiting_callers,
                    req.stalled_reads.len(),
                    req.deferred_http.len(),
                    req.waiting_args.keys().collect::<Vec<_>>(),
                )
            })
            .collect()
    }

    fn on_tracer_installed(&mut self) {
        self.kill_busy_base = self.squash_kill_busy;
    }

    fn take_unattributed_squash_busy(&mut self) -> SimDuration {
        let delta = self.squash_kill_busy - self.kill_busy_base;
        self.kill_busy_base = self.squash_kill_busy;
        delta
    }

    fn finalize_metrics(&self, m: &mut RunMetrics) {
        m.branch_hits = self.predictor.hit_rate();
        m.memo_hits = self.memos.hit_rate();
    }
}

impl SpecCore {
    /// Creates the speculative core for `app` under `config`, seeded
    /// with `seed`.
    pub fn new(app: Arc<AppSpec>, config: SpecConfig, seed: u64) -> Self {
        let functions = app.registry.len();
        let seqtable = SequenceTable::new(app.compiled.clone());
        SpecCore {
            app,
            rt: Runtime::new(seed),
            predictor: BranchPredictor::new(config.branch_confidence_window),
            memos: MemoTables::new(functions, config.memo_capacity),
            stall_list: StallList::new(config.stall_after_squashes),
            config,
            squash_kill_busy: SimDuration::ZERO,
            kill_busy_base: SimDuration::ZERO,
            spec_live: FxHashSet::default(),
            spec_gauge_h: (None, None),
            seqtable,
            instances: FxHashMap::default(),
            meta: FxHashMap::default(),
            orphans: FxHashSet::default(),
            requests: FxHashMap::default(),
        }
    }

    /// The application under test.
    pub fn app(&self) -> &AppSpec {
        &self.app
    }

    /// The branch predictor (for hit-rate reporting).
    pub fn predictor(&self) -> &BranchPredictor {
        &self.predictor
    }

    /// The memoization tables (for hit-rate and size reporting).
    pub fn memos(&self) -> &MemoTables {
        &self.memos
    }

    /// The stall list (for squash-minimization statistics).
    pub fn stall_list(&self) -> &StallList {
        &self.stall_list
    }

    /// Samples every occupancy gauge at the current sim-time. Called after
    /// each handled event; one branch when the registry is disabled. The
    /// registry collapses consecutive duplicate values, so steady states
    /// cost one stored sample regardless of event volume.
    fn sample_gauges(&mut self) {
        if !self.rt.registry.enabled() {
            return;
        }
        let now = self.rt.sim.now();
        self.rt.sample_cluster_gauges(now);
        self.spec_live.retain(|id| self.instances.contains_key(id));
        self.rt.registry.sample_interned(
            &mut self.spec_gauge_h.0,
            now,
            "specfaas_inflight_spec_slots",
            "",
            "",
            self.spec_live.len() as u64,
        );
        self.rt.registry.sample_interned(
            &mut self.spec_gauge_h.1,
            now,
            "specfaas_memo_entries",
            "",
            "",
            self.memos.total_entries() as u64,
        );
        self.rt.sample_kv_gauge(now);
    }

    /// Charges `amount` to the Table-IV squashed-CPU ledger and mirrors
    /// the charge into the flight recorder ([`TraceEventKind::SquashCharge`])
    /// and registry, so post-hoc attribution reconciles exactly with
    /// [`RunMetrics::squashed_core_time`]. Zero-amount charges are
    /// ledger no-ops and emit nothing.
    fn charge_squashed(
        &mut self,
        req: RequestId,
        func: FuncId,
        site: &'static str,
        cascade: u32,
        amount: SimDuration,
    ) {
        self.rt.charge_squashed(req.0, func, site, cascade, amount);
        if amount > SimDuration::ZERO {
            self.rt.topk_by_function(
                "specfaas_wasted_core_us_by_function",
                &self.app,
                func,
                amount.as_micros(),
            );
        }
    }

    // ------------------------------------------------------------------
    // Request lifecycle
    // ------------------------------------------------------------------

    fn submit_request(&mut self, input: Value) -> RequestId {
        let id = self.rt.alloc_req();
        let ctrl = self.rt.cluster.pick_controller();
        let now = self.rt.sim.now();
        let mut req = Req {
            arrived: now,
            ctrl,
            measured: now >= self.rt.measure_from,
            pipeline: Pipeline::new(),
            buffer: DataBuffer::new(),
            slot_inst: FxHashMap::default(),
            call_state: FxHashMap::default(),
            waiting_callers: FxHashMap::default(),
            waiting_args: FxHashMap::default(),
            stalled_reads: Vec::new(),
            deferred_http: FxHashMap::default(),
            extended: FxHashSet::default(),
            slot_cpu: FxHashMap::default(),
            fork_joins: FxHashMap::default(),
            call_records: FxHashMap::default(),
            committing: None,
            attempts: FxHashMap::default(),
            retry_hold: FxHashSet::default(),
            learned: Vec::new(),
            committed_sequence: Vec::new(),
            functions_run: 0,
            functions_squashed: 0,
            end_committed: false,
            completed: false,
        };
        let start = self.seqtable.start();
        let func = self.seqtable.func_at(start);
        let slot =
            req.pipeline
                .push_back(func, SlotRole::Entry { entry: start }, PathHistory::start());
        {
            let s = req.pipeline.slot_mut(slot).expect("fresh slot");
            s.input = Some(input);
            s.non_speculative = self.app.registry.spec(func).annotations.non_speculative;
        }
        self.requests.insert(id, req);
        self.rt.metrics.submitted += 1;
        self.rt.registry.inc("specfaas_requests_submitted_total");
        if self.rt.tracer.enabled() {
            self.rt
                .tracer
                .emit(now, TraceEventKind::RequestArrival { req: id.0 });
        }
        // Predict the start function's output so extension can speculate
        // past it immediately.
        self.refresh_prediction(id, slot);
        self.pump(id);
        id
    }

    // ------------------------------------------------------------------
    // Drivers
    // ------------------------------------------------------------------

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Arrival => harness::handle_arrival(self),
            Ev::Launch(id) => self.on_launch(id),
            Ev::ContainerReady(id) => self.try_start(id),
            Ev::Resume(id, v) => self.on_resume(id, v),
            Ev::CommitApply(req, slot) => self.on_commit_apply(req, slot),
            Ev::SquashRelease(id, reusable) => self.on_squash_release(id, reusable),
            Ev::Complete(req) => self.on_complete(req),
            Ev::KvRetry(id, op, attempt) => self.on_kv_retry(id, op, attempt),
            Ev::RetrySlot(req, slot) => self.on_retry_slot(req, slot),
            Ev::Timeout(id) => self.on_timeout(id),
        }
        // Gauges observe post-event state; a disabled registry makes this
        // a single branch.
        self.sample_gauges();
    }

    /// Re-issues a KV operation after its storage backoff. The
    /// instance may have been squashed in the meantime, in which case
    /// the retry is dropped.
    fn on_kv_retry(&mut self, id: InstanceId, op: KvOp, attempt: u32) {
        let Some(meta) = self.meta.get(&id) else {
            return;
        };
        let (req_id, slot_id) = (meta.req, meta.slot);
        match op {
            KvOp::Get { key } => self.handle_get(req_id, slot_id, id, key, attempt),
            KvOp::Set { key, value } => self.handle_set(req_id, slot_id, id, key, value, attempt),
        }
    }
}

mod commit;
mod dispatch;
mod exec;
mod squash;

#[cfg(test)]
mod tests;
