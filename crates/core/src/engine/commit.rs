//! Completion, branch resolution, successor validation and strictly
//! in-order commit (Â§V, Â§V-E).
use super::*;

impl SpecCore {
    pub(super) fn complete_slot(
        &mut self,
        req_id: RequestId,
        slot_id: SlotId,
        id: InstanceId,
        output: Value,
    ) {
        let now = self.rt.sim.now();
        // Release execution resources.
        let inst = self.instances.remove(&id).expect("live");
        self.meta.remove(&id);
        self.release_instance_resources(&inst, true, now);
        self.rt.metrics.breakdowns.push(inst.breakdown);
        let core_time = inst.accumulated_core
            + inst
                .started_at
                .map(|s| now - s)
                .unwrap_or(SimDuration::ZERO);
        if self.rt.tracer.enabled() {
            if let Some(s) = inst.started_at {
                self.rt.tracer.emit(
                    s,
                    TraceEventKind::Span {
                        req: req_id.0,
                        func: inst.func.0,
                        node: inst.node.0 as u32,
                        phase: Phase::Execution,
                        end: now,
                    },
                );
            }
        }

        if !self.requests.contains_key(&req_id) {
            // Request already gone (defensive): the stint can no longer be
            // attributed to a slot, so count it as wasted work rather than
            // dropping it from the core-time conservation ledger.
            self.charge_squashed(req_id, inst.func, "late_completion", 0, core_time);
            return;
        }
        if self.requests[&req_id].pipeline.slot(slot_id).is_none() {
            // Slot squashed while its completion event was in flight.
            self.charge_squashed(req_id, inst.func, "late_completion", 0, core_time);
            return;
        }
        let req = self.requests.get_mut(&req_id).expect("live");
        req.slot_inst.remove(&slot_id);
        *req.slot_cpu.entry(slot_id).or_insert(SimDuration::ZERO) += core_time;
        {
            let slot = req.pipeline.slot_mut(slot_id).expect("live");
            slot.state = SlotState::Completed;
            slot.output = Some(output);
        }
        // Prefetched callees the caller never consumed (e.g. a
        // conditional call not taken this run) are wasted speculation:
        // squash them and their descendants.
        self.squash_unconsumed_callees(req_id, slot_id);
        self.on_slot_completed(req_id, slot_id);
    }

    /// Removes every still-live prefetched callee of a just-completed
    /// caller, together with their descendant blocks.
    pub(super) fn squash_unconsumed_callees(&mut self, req_id: RequestId, caller: SlotId) {
        let leftovers: Vec<SlotId> = {
            let Some(req) = self.requests.get_mut(&req_id) else {
                return;
            };
            match req.call_state.remove(&caller) {
                Some(cs) => cs.prefetched,
                None => return,
            }
        };
        for head in leftovers {
            // Collect the callee's contiguous descendant block and squash
            // it (removal, not reset: the work is simply not needed).
            let block: Vec<SlotId> = {
                let Some(req) = self.requests.get(&req_id) else {
                    return;
                };
                if req.pipeline.slot(head).is_none() {
                    continue;
                }
                let end = Self::block_end(req, head);
                let start = req.pipeline.position(head).expect("live");
                let stop = req.pipeline.position(end).expect("live");
                req.pipeline
                    .iter_order()
                    .skip(start)
                    .take(stop - start + 1)
                    .collect()
            };
            let cascade = block.len() as u32;
            if self.rt.tracer.enabled() {
                let now = self.rt.sim.now();
                self.rt.tracer.emit(
                    now,
                    TraceEventKind::Squash {
                        req: req_id.0,
                        slot: head.0,
                        cause: SquashCause::WrongPath,
                        cascade,
                    },
                );
            }
            for s in block {
                self.squash_slot(req_id, s, false, "unconsumed_callee", cascade);
            }
        }
        let Some(req) = self.requests.get_mut(&req_id) else {
            return;
        };
        req.waiting_callers
            .retain(|callee, _| req.pipeline.slot(*callee).is_some());
        req.stalled_reads
            .retain(|sr| req.pipeline.slot(sr.slot).is_some());
    }

    /// Post-completion processing: resolve branches, validate successor
    /// inputs, wake waiting callers, release stalls, pump.
    pub(super) fn on_slot_completed(&mut self, req_id: RequestId, slot_id: SlotId) {
        // 1. Branch resolution (control-dependence validation).
        self.resolve_branch(req_id, slot_id);
        // 2. Data-dependence validation of the program-order successor.
        self.validate_successor(req_id, slot_id);
        // 3. Wake a caller stalled on this callee.
        self.wake_waiting_caller(req_id, slot_id);
        // 4. Stalled reads watching this producer can proceed.
        self.release_stalls(req_id, None);
        // 5. Fork-join contributions are handled at commit (conservative).
        self.pump(req_id);
    }

    pub(super) fn resolve_branch(&mut self, req_id: RequestId, slot_id: SlotId) {
        let Some(req) = self.requests.get(&req_id) else {
            return;
        };
        let Some(slot) = req.pipeline.slot(slot_id) else {
            return;
        };
        let SlotRole::Entry { entry } = slot.role else {
            return;
        };
        let EntryKind::Branch { field, .. } = self.seqtable.kind_at(entry).clone() else {
            return;
        };
        let Some(predicted) = slot.predicted_taken else {
            return; // never speculated past
        };
        let output = slot.output.clone().expect("completed");
        let actual = Self::branch_outcome(&output, field.as_deref());
        self.predictor.record_outcome(predicted == actual);
        if self.rt.tracer.enabled() {
            let now = self.rt.sim.now();
            self.rt.tracer.emit(
                now,
                TraceEventKind::BranchResolve {
                    req: req_id.0,
                    predicted,
                    actual,
                },
            );
        }
        {
            let req = self.requests.get_mut(&req_id).expect("live");
            let slot = req.pipeline.slot_mut(slot_id).expect("live");
            slot.predicted_taken = None; // resolved
        }
        if predicted != actual {
            // Squash the wrong path: everything after the branch.
            let req = self.requests.get_mut(&req_id).expect("live");
            let succ = req.pipeline.successors(slot_id);
            if let Some(first) = succ.first().copied() {
                self.squash_from(req_id, first, SquashKind::WrongPath);
            }
            // Allow re-extension along the correct path.
            let req = self.requests.get_mut(&req_id).expect("live");
            req.extended.remove(&slot_id);
        }
    }

    /// Validates the memo-predicted input of this slot's program-order
    /// successor against the actual output (§V-B).
    pub(super) fn validate_successor(&mut self, req_id: RequestId, slot_id: SlotId) {
        let Some(req) = self.requests.get(&req_id) else {
            return;
        };
        let Some(slot) = req.pipeline.slot(slot_id) else {
            return;
        };
        let SlotRole::Entry { entry } = slot.role else {
            return;
        };
        let output = slot.output.clone().expect("completed");
        let expected = match self.seqtable.kind_at(entry) {
            EntryKind::Simple { .. } => output,
            // Branch entries route their own input through; forks are
            // spawned at commit with actual outputs.
            EntryKind::Branch { .. } => slot.input.clone().expect("input"),
            EntryKind::Fork { .. } => return,
        };
        // The successor is the first Entry-role slot after this slot's
        // descendant block.
        let anchor = Self::block_end(req, slot_id);
        let pos = req.pipeline.position(anchor).expect("live");
        let order: Vec<SlotId> = req.pipeline.iter_order().collect();
        let Some(&succ) = order.get(pos + 1) else {
            return;
        };
        let s = req.pipeline.slot(succ).expect("live");
        if !matches!(s.role, SlotRole::Entry { .. }) {
            return;
        }
        if s.input_speculative {
            if s.input.as_ref() == Some(&expected) {
                // Validated: the prediction was right.
                let req = self.requests.get_mut(&req_id).expect("live");
                req.pipeline.slot_mut(succ).expect("live").input_speculative = false;
            } else {
                // Correct the input BEFORE squashing: squash_from ends
                // with a pump that may relaunch the reset slot on the
                // spot, and that instance must capture the validated
                // input — relaunching with the stale one would recompute
                // the stale output, self-validate the stale speculation
                // downstream, and learn a wrong memo row at commit.
                {
                    let req = self.requests.get_mut(&req_id).expect("live");
                    if let Some(s) = req.pipeline.slot_mut(succ) {
                        s.input = Some(expected);
                        s.input_speculative = false;
                    }
                }
                self.squash_from(req_id, succ, SquashKind::WrongInput);
                self.refresh_prediction(req_id, succ);
            }
        }
    }

    pub(super) fn wake_waiting_caller(&mut self, req_id: RequestId, callee_slot: SlotId) {
        let Some(req) = self.requests.get_mut(&req_id) else {
            return;
        };
        let Some(caller_slot) = req.waiting_callers.remove(&callee_slot) else {
            return;
        };
        let Some(&caller_inst) = req.slot_inst.get(&caller_slot) else {
            // The caller was squashed while this callee ran; it will
            // re-issue the call against fresh state, so this completed
            // callee is an orphan — drop it (buffered writes included).
            req.buffer.squash(callee_slot);
            req.waiting_args.remove(&caller_slot);
            if let Some(callee_func) = req.pipeline.slot(callee_slot).map(|s| s.func) {
                req.pipeline.remove(callee_slot);
                req.extended.remove(&callee_slot);
                let wasted = req.slot_cpu.remove(&callee_slot);
                req.functions_squashed += 1;
                if let Some(t) = wasted {
                    self.charge_squashed(req_id, callee_func, "orphan_callee", 0, t);
                }
            }
            return;
        };
        self.consume_callee(req_id, caller_slot, caller_inst, callee_slot);
    }

    pub(super) fn try_commit(&mut self, req_id: RequestId) {
        let now = self.rt.sim.now();
        let Some(req) = self.requests.get_mut(&req_id) else {
            return;
        };
        if req.committing.is_some() || req.completed {
            return;
        }
        let Some(head) = req.pipeline.committable() else {
            return;
        };
        // Callee heads are consumed by their caller, not committed.
        if matches!(
            req.pipeline.slot(head).expect("live").role,
            SlotRole::Callee { .. }
        ) {
            return;
        }
        req.committing = Some(head);
        let ctrl = req.ctrl;
        let delay = self
            .rt
            .cluster
            .controller_delay(ctrl, now, self.rt.model.spec_commit_service);
        self.rt
            .sim
            .schedule_in(delay, Ev::CommitApply(req_id, head));
    }

    pub(super) fn on_commit_apply(&mut self, req_id: RequestId, slot_id: SlotId) {
        let Some(req) = self.requests.get_mut(&req_id) else {
            return;
        };
        req.committing = None;
        if req.pipeline.head() != Some(slot_id)
            || req.pipeline.slot(slot_id).map(|s| s.state) != Some(SlotState::Completed)
        {
            self.try_commit(req_id);
            return;
        }
        // Flush buffered writes to global storage.
        let flush = req.buffer.commit(slot_id);
        let slot = req.pipeline.remove(slot_id);
        req.extended.remove(&slot_id);
        // Credit the committed work (including merged callee stints).
        if let Some(t) = req.slot_cpu.remove(&slot_id) {
            self.rt.metrics.useful_core_time += t;
        }
        for (k, v) in flush {
            self.rt.kv.set(k, v);
        }
        let req = self.requests.get_mut(&req_id).expect("live");
        req.committed_sequence.push(slot.func.0);
        self.rt.registry.inc("specfaas_commits_total");
        if self.rt.tracer.enabled() {
            let now = self.rt.sim.now();
            self.rt.tracer.emit(
                now,
                TraceEventKind::Commit {
                    req: req_id.0,
                    slot: slot_id.0,
                    func: slot.func.0,
                },
            );
        }

        // Record committed knowledge for end-of-invocation table updates.
        let input = slot.input.clone().expect("committed slot has input");
        let output = slot.output.clone().expect("committed slot has output");
        let callee_inputs: Vec<Value> = slot
            .learned_calls
            .iter()
            .map(|(_, i, _)| i.clone())
            .collect();
        let callees: Vec<FuncId> = slot.learned_calls.iter().map(|(f, _, _)| *f).collect();
        req.learned.push(Learned::Memo {
            func: slot.func,
            input: input.clone(),
            output: output.clone(),
            callee_inputs,
        });
        // Promote the call observations bubbled up from consumed callees:
        // each carries its own direct callee structure, so mid-tier
        // functions get memoization rows and sequence-table edges too.
        for rec in req.call_records.remove(&slot_id).unwrap_or_default() {
            req.learned.push(Learned::Memo {
                func: rec.func,
                input: rec.input,
                output: rec.output,
                callee_inputs: rec.callee_inputs,
            });
            req.learned.push(Learned::Calls {
                caller: rec.func,
                callees: rec.callee_funcs,
            });
        }
        if let SlotRole::Entry { entry } = slot.role {
            if let EntryKind::Branch { field, .. } = self.seqtable.kind_at(entry).clone() {
                let taken = Self::branch_outcome(&output, field.as_deref());
                req.learned.push(Learned::Branch {
                    entry,
                    path: slot.path,
                    taken,
                });
            }
            req.learned.push(Learned::Calls {
                caller: slot.func,
                callees,
            });
        }

        // Useful core time accounting.
        // (complete_slot already put it into slot_cpu → metrics)
        // Note: metrics.useful_core_time is credited here.
        // Fork spawn or end detection.
        let mut fork_spawn: Option<(Vec<usize>, Option<usize>, Value)> = None;
        let mut join_target: Option<(usize, Value)> = None;
        let mut reached_end = false;
        if let SlotRole::Entry { entry } = slot.role {
            match self.seqtable.kind_at(entry).clone() {
                EntryKind::Fork { branches, join } => {
                    fork_spawn = Some((branches, join, output.clone()));
                }
                EntryKind::Simple { next } => match next {
                    Some(n) if self.seqtable.compiled().entries[n].join_arity > 1 => {
                        join_target = Some((n, output.clone()));
                    }
                    Some(_) => {}
                    None => reached_end = true,
                },
                EntryKind::Branch {
                    field,
                    taken,
                    not_taken,
                } => {
                    let dir = Self::branch_outcome(&output, field.as_deref());
                    let target = if dir { taken } else { not_taken };
                    match target {
                        Some(n) if self.seqtable.compiled().entries[n].join_arity > 1 => {
                            join_target = Some((n, slot.input.clone().expect("input")));
                        }
                        Some(_) => {}
                        None => reached_end = true,
                    }
                }
            }
        }

        let req = self.requests.get_mut(&req_id).expect("live");
        if reached_end {
            req.end_committed = true;
        }

        // Fork: spawn branch heads now, with actual outputs. Their inputs
        // are real, so memo rows can immediately predict their outputs and
        // let extension speculate down each branch.
        if let Some((branches, _join, payload)) = fork_spawn {
            let mut spawned = Vec::new();
            for b in branches {
                let func = self.seqtable.func_at(b);
                let req = self.requests.get_mut(&req_id).expect("live");
                let path = slot.path.extend(slot.func.0);
                let id = req
                    .pipeline
                    .push_back(func, SlotRole::Entry { entry: b }, path);
                let s = req.pipeline.slot_mut(id).expect("fresh");
                s.input = Some(payload.clone());
                s.non_speculative = self.app.registry.spec(func).annotations.non_speculative;
                spawned.push(id);
            }
            for id in spawned {
                self.refresh_prediction(req_id, id);
            }
        }
        // Join contribution.
        if let Some((join_entry, payload)) = join_target {
            let req = self.requests.get_mut(&req_id).expect("live");
            let arity = self.seqtable.compiled().entries[join_entry].join_arity;
            let contribs = req.fork_joins.entry(join_entry).or_default();
            contribs.push(payload);
            if contribs.len() as u32 == arity {
                let inputs = req.fork_joins.remove(&join_entry).expect("present");
                let func = self.seqtable.func_at(join_entry);
                let path = slot.path.extend(slot.func.0);
                let id = req
                    .pipeline
                    .push_back(func, SlotRole::Entry { entry: join_entry }, path);
                let s = req.pipeline.slot_mut(id).expect("fresh");
                s.input = Some(Value::List(inputs));
                s.non_speculative = self.app.registry.spec(func).annotations.non_speculative;
                // The join's input (all contributions) is real: a memo row
                // for it lets extension speculate past the join barrier.
                self.refresh_prediction(req_id, id);
            }
        }

        // Release deferred side effects that turned non-speculative.
        self.release_deferred_http(req_id);

        // Request completion is checked inside pump().
        self.pump(req_id);
    }

    pub(super) fn on_complete(&mut self, req_id: RequestId) {
        let now = self.rt.sim.now();
        let Some(req) = self.requests.remove(&req_id) else {
            return;
        };
        // Apply committed knowledge to the persistent tables (§V-E: never
        // updated with speculative data — the whole invocation validated).
        // Group memo knowledge by (func, input): the callee inputs come
        // from the commit record of the caller.
        let mut memo_rows: FxHashMap<(u32, Value), (Value, Vec<Value>)> = FxHashMap::default();
        for l in &req.learned {
            match l {
                Learned::Memo {
                    func,
                    input,
                    output,
                    callee_inputs,
                } => {
                    let e = memo_rows
                        .entry((func.0, input.clone()))
                        .or_insert((output.clone(), Vec::new()));
                    e.0 = output.clone();
                    if !callee_inputs.is_empty() {
                        e.1 = callee_inputs.clone();
                    }
                }
                Learned::Branch { entry, path, taken } => {
                    self.predictor
                        .update(BranchSite::Entry(*entry), *path, *taken);
                }
                Learned::Calls { caller, callees } => {
                    self.seqtable.learn_calls(*caller, callees);
                }
            }
        }
        for ((func, input), (output, callee_inputs)) in memo_rows {
            self.memos
                .table_mut(func)
                .insert(input, output, callee_inputs);
        }
        if self.rt.tracer.enabled() {
            self.rt.tracer.emit(
                now,
                TraceEventKind::Terminal {
                    req: req_id.0,
                    completed: true,
                },
            );
        }
        if self.rt.tracer.checking() {
            // The learned-table promotion above is the only place memo
            // tables grow; re-validate capacity after every request.
            for f in 0..self.app.registry.len() as u32 {
                let t = self.memos.table(f);
                self.rt.tracer.check_memo_capacity(f, t.len(), t.capacity());
            }
        }
        self.rt.metrics.functions_squashed += u64::from(req.functions_squashed);
        self.rt.registry.inc("specfaas_requests_completed_total");
        if req.measured {
            self.rt.record_completion(InvocationRecord {
                arrived: req.arrived,
                completed: now,
                functions_run: req.functions_run,
                functions_squashed: req.functions_squashed,
                sequence: req.committed_sequence,
                outcome: RequestOutcome::Completed,
            });
        }
        // Closed loop: this client immediately issues its next request.
        harness::closed_loop_resubmit(self);
    }
}
