//! The Function Execution Pipeline (paper §V, Fig. 7).
//!
//! For each application invocation the controller maintains the ordered
//! list of not-yet-committed functions, tagged with speculative / completed
//! state. Commits are strictly in order, like a processor's reorder
//! buffer: the oldest slot commits only once it has completed and its
//! dependences are validated.
//!
//! Slots form a *dynamic program order*: explicit workflow entries unroll
//! branches and loops; implicit callees are inserted between their caller
//! and the caller's successors (§V-D).

use std::collections::HashMap;
use std::fmt;

use specfaas_storage::Value;
use specfaas_workflow::FuncId;

use crate::predictor::PathHistory;

/// Identifier of a pipeline slot (one dynamic function execution site).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotId(pub u64);

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot#{}", self.0)
    }
}

/// Lifecycle state of a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// Created but not yet launched (input may still be unknown).
    Created,
    /// Launched: platform overhead / container / core acquisition or
    /// execution in progress.
    Running,
    /// Execution finished; output available; awaiting commit.
    Completed,
    /// Committed (terminal; slot leaves the pipeline).
    Committed,
}

/// Why a slot exists and where its continuation goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotRole {
    /// Executes compiled-workflow entry `entry`.
    Entry {
        /// Entry index in the compiled workflow.
        entry: usize,
    },
    /// A speculatively launched (or demand-spawned) callee of `caller`,
    /// at call-site index `site` in call order.
    Callee {
        /// The caller's slot.
        caller: SlotId,
        /// Call-site index (0-based, in call order).
        site: usize,
    },
}

/// One pipeline slot.
#[derive(Debug, Clone)]
pub struct Slot {
    /// This slot's id.
    pub id: SlotId,
    /// Function executed here.
    pub func: FuncId,
    /// Role (workflow entry or callee).
    pub role: SlotRole,
    /// Lifecycle state.
    pub state: SlotState,
    /// Input document (actual or memo-predicted).
    pub input: Option<Value>,
    /// True if `input` came from a memoization prediction and is not yet
    /// validated against the producer's actual output.
    pub input_speculative: bool,
    /// Memo-predicted output (used to feed successors before completion).
    pub predicted_output: Option<Value>,
    /// Actual output, once completed.
    pub output: Option<Value>,
    /// For slots created beyond an unresolved branch: the branch slot and
    /// the predicted direction this slot depends on.
    pub control_dep: Option<(SlotId, bool)>,
    /// For branch-entry slots: the direction the controller predicted
    /// (None when not speculated past).
    pub predicted_taken: Option<bool>,
    /// Path history at this slot (used to key predictor updates).
    pub path: PathHistory,
    /// Loop-iteration disambiguator for back-edge entries.
    pub iteration: u32,
    /// Learned callee records (input/output pairs observed at call
    /// returns), bubbled up for commit-time table updates.
    pub learned_calls: Vec<(FuncId, Value, Value)>,
    /// True for slots whose function carries the `non-speculative`
    /// annotation.
    pub non_speculative: bool,
}

/// The pipeline of in-progress slots for one application invocation.
///
/// # Example
///
/// ```
/// use specfaas_core::{Pipeline, SlotState};
/// use specfaas_core::pipeline::SlotRole;
/// use specfaas_workflow::FuncId;
/// use specfaas_core::predictor::PathHistory;
///
/// let mut p = Pipeline::new();
/// let a = p.push_back(FuncId(0), SlotRole::Entry { entry: 0 }, PathHistory::start());
/// let b = p.push_back(FuncId(1), SlotRole::Entry { entry: 1 }, PathHistory::start());
/// assert_eq!(p.head(), Some(a));
/// assert!(p.is_before(a, b));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    order: Vec<SlotId>,
    slots: HashMap<SlotId, Slot>,
    next_id: u64,
    total_created: u64,
}

impl Pipeline {
    /// Creates an empty pipeline.
    pub fn new() -> Self {
        Pipeline::default()
    }

    fn new_slot(&mut self, func: FuncId, role: SlotRole, path: PathHistory) -> Slot {
        let id = SlotId(self.next_id);
        self.next_id += 1;
        self.total_created += 1;
        Slot {
            id,
            func,
            role,
            state: SlotState::Created,
            input: None,
            input_speculative: false,
            predicted_output: None,
            output: None,
            control_dep: None,
            predicted_taken: None,
            path,
            iteration: 0,
            learned_calls: Vec::new(),
            non_speculative: false,
        }
    }

    /// Appends a slot at the tail of program order.
    pub fn push_back(&mut self, func: FuncId, role: SlotRole, path: PathHistory) -> SlotId {
        let slot = self.new_slot(func, role, path);
        let id = slot.id;
        self.slots.insert(id, slot);
        self.order.push(id);
        id
    }

    /// Inserts a slot immediately after `anchor` in program order (used
    /// for implicit callees, which precede their caller's successors).
    ///
    /// # Panics
    /// Panics if `anchor` is not in the pipeline.
    pub fn insert_after(
        &mut self,
        anchor: SlotId,
        func: FuncId,
        role: SlotRole,
        path: PathHistory,
    ) -> SlotId {
        let pos = self
            .position(anchor)
            .expect("insert_after anchor not in pipeline");
        let slot = self.new_slot(func, role, path);
        let id = slot.id;
        self.slots.insert(id, slot);
        self.order.insert(pos + 1, id);
        id
    }

    /// The oldest (least speculative) slot.
    pub fn head(&self) -> Option<SlotId> {
        self.order.first().copied()
    }

    /// The youngest (most speculative) slot.
    pub fn tail(&self) -> Option<SlotId> {
        self.order.last().copied()
    }

    /// Program-order position of a slot.
    pub fn position(&self, id: SlotId) -> Option<usize> {
        self.order.iter().position(|s| *s == id)
    }

    /// True if `a` precedes `b` in program order.
    ///
    /// # Panics
    /// Panics if either slot is not in the pipeline.
    pub fn is_before(&self, a: SlotId, b: SlotId) -> bool {
        self.position(a).expect("slot a in pipeline")
            < self.position(b).expect("slot b in pipeline")
    }

    /// Number of live (uncommitted, unmerged) slots.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if no slots are live.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Total slots ever created for this invocation (squash bookkeeping).
    pub fn total_created(&self) -> u64 {
        self.total_created
    }

    /// Program order, oldest first.
    pub fn iter_order(&self) -> impl Iterator<Item = SlotId> + '_ {
        self.order.iter().copied()
    }

    /// Slots strictly after `id` in program order, oldest first.
    pub fn successors(&self, id: SlotId) -> Vec<SlotId> {
        match self.position(id) {
            Some(p) => self.order[p + 1..].to_vec(),
            None => Vec::new(),
        }
    }

    /// Shared access to a slot.
    pub fn slot(&self, id: SlotId) -> Option<&Slot> {
        self.slots.get(&id)
    }

    /// Mutable access to a slot.
    pub fn slot_mut(&mut self, id: SlotId) -> Option<&mut Slot> {
        self.slots.get_mut(&id)
    }

    /// Removes a slot from the pipeline (commit, squash-removal, or
    /// callee merge). Returns the slot.
    ///
    /// # Panics
    /// Panics if the slot is not live.
    pub fn remove(&mut self, id: SlotId) -> Slot {
        let pos = self.position(id).expect("removing a slot not in pipeline");
        self.order.remove(pos);
        self.slots.remove(&id).expect("slot data present")
    }

    /// True if every slot before `id` has committed (i.e. `id` is the
    /// head): the slot is non-speculative in the paper's sense.
    pub fn is_head(&self, id: SlotId) -> bool {
        self.head() == Some(id)
    }

    /// The head slot if it is ready to commit (completed).
    pub fn committable(&self) -> Option<SlotId> {
        let head = self.head()?;
        let s = self.slot(head).expect("head slot present");
        (s.state == SlotState::Completed).then_some(head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipe3() -> (Pipeline, SlotId, SlotId, SlotId) {
        let mut p = Pipeline::new();
        let a = p.push_back(
            FuncId(0),
            SlotRole::Entry { entry: 0 },
            PathHistory::start(),
        );
        let b = p.push_back(
            FuncId(1),
            SlotRole::Entry { entry: 1 },
            PathHistory::start(),
        );
        let c = p.push_back(
            FuncId(2),
            SlotRole::Entry { entry: 2 },
            PathHistory::start(),
        );
        (p, a, b, c)
    }

    #[test]
    fn order_and_head_tail() {
        let (p, a, b, c) = pipe3();
        assert_eq!(p.head(), Some(a));
        assert_eq!(p.tail(), Some(c));
        assert!(p.is_before(a, b));
        assert!(p.is_before(b, c));
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn insert_after_places_correctly() {
        let (mut p, a, b, _c) = pipe3();
        let x = p.insert_after(
            a,
            FuncId(9),
            SlotRole::Callee { caller: a, site: 0 },
            PathHistory::start(),
        );
        assert!(p.is_before(a, x));
        assert!(p.is_before(x, b));
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn successors_lists_younger_slots() {
        let (p, a, b, c) = pipe3();
        assert_eq!(p.successors(a), vec![b, c]);
        assert_eq!(p.successors(c), Vec::<SlotId>::new());
    }

    #[test]
    fn commit_requires_completed_head() {
        let (mut p, a, b, _c) = pipe3();
        assert_eq!(p.committable(), None);
        p.slot_mut(b).unwrap().state = SlotState::Completed;
        assert_eq!(p.committable(), None, "younger completion is not enough");
        p.slot_mut(a).unwrap().state = SlotState::Completed;
        assert_eq!(p.committable(), Some(a));
        let removed = p.remove(a);
        assert_eq!(removed.id, a);
        assert_eq!(p.committable(), Some(b));
    }

    #[test]
    fn remove_keeps_order_consistent() {
        let (mut p, a, b, c) = pipe3();
        p.remove(b);
        assert_eq!(p.successors(a), vec![c]);
        assert!(p.slot(b).is_none());
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn is_head_identifies_non_speculative_slot() {
        let (mut p, a, b, _c) = pipe3();
        assert!(p.is_head(a));
        assert!(!p.is_head(b));
        p.remove(a);
        assert!(p.is_head(b));
    }

    #[test]
    fn total_created_monotone() {
        let (mut p, a, _b, _c) = pipe3();
        assert_eq!(p.total_created(), 3);
        p.remove(a);
        p.push_back(
            FuncId(5),
            SlotRole::Entry { entry: 0 },
            PathHistory::start(),
        );
        assert_eq!(p.total_created(), 4);
    }
}
