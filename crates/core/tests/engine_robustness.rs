//! Robustness and invariant tests for the speculative engine, beyond the
//! per-module unit tests: deep misprediction cascades, loop workflows,
//! concurrent-request isolation, and determinism under every squash
//! mechanism.

use std::sync::Arc;

use specfaas_core::{SpecConfig, SpecEngine, SquashMechanism};
use specfaas_platform::BaselineEngine;
use specfaas_sim::{SimDuration, SimRng};
use specfaas_storage::Value;
use specfaas_workflow::expr::*;
use specfaas_workflow::{AppSpec, FunctionRegistry, FunctionSpec, Program, Stmt, Workflow};

/// A workflow with a data-dependent loop: `check` counts down a field.
fn loop_app() -> Arc<AppSpec> {
    let mut reg = FunctionRegistry::new();
    reg.register(FunctionSpec::new(
        "init",
        Program::builder()
            .compute_ms(3)
            .ret(make_map([("n", field(input(), "n")), ("acc", lit(0i64))])),
    ));
    reg.register(FunctionSpec::new(
        "check",
        Program::builder().compute_ms(2).ret(make_map([
            ("more", gt(field(input(), "n"), lit(0i64))),
            ("n", field(input(), "n")),
            ("acc", field(input(), "acc")),
        ])),
    ));
    reg.register(FunctionSpec::new(
        "body",
        Program::builder().compute_ms(3).ret(make_map([
            ("n", sub(field(input(), "n"), lit(1i64))),
            ("acc", add(field(input(), "acc"), field(input(), "n"))),
        ])),
    ));
    reg.register(FunctionSpec::new(
        "finish",
        Program::builder()
            .compute_ms(2)
            .set(lit("loop_result"), field(input(), "acc"))
            .ret(field(input(), "acc")),
    ));
    Arc::new(AppSpec::new(
        "Loopy",
        "Test",
        reg,
        Workflow::sequence(vec![
            Workflow::task("init"),
            Workflow::while_field("check", "more", Workflow::task("body")),
            Workflow::task("finish"),
        ]),
    ))
}

fn loop_expected(n: i64) -> i64 {
    // body adds (n) then decrements: acc = n + (n-1) + ... + 1.
    (1..=n).sum()
}

#[test]
fn loop_workflow_correct_on_baseline_and_spec() {
    let app = loop_app();
    for n in [0i64, 1, 3, 5] {
        let input = Value::map([("n", Value::Int(n))]);
        let mut base = BaselineEngine::new(Arc::clone(&app), 1);
        base.prewarm();
        base.run_single(input.clone());
        assert_eq!(
            base.kv.peek("loop_result"),
            Some(&Value::Int(loop_expected(n))),
            "baseline loop n={n}"
        );

        let mut spec = SpecEngine::new(Arc::clone(&app), SpecConfig::full(), 1);
        spec.prewarm();
        spec.run_single(input.clone());
        spec.run_single(input); // speculated (loop unrolled from memo)
        assert_eq!(
            spec.kv.peek("loop_result"),
            Some(&Value::Int(loop_expected(n))),
            "spec loop n={n}"
        );
    }
}

#[test]
fn loop_iteration_count_change_squashes_and_recovers() {
    let app = loop_app();
    let mut spec = SpecEngine::new(Arc::clone(&app), SpecConfig::full(), 2);
    spec.prewarm();
    // Train with n=3 (loop runs 3 times)...
    for _ in 0..4 {
        spec.run_single(Value::map([("n", Value::Int(3))]));
    }
    // ...then run n=5: the loop-exit prediction is wrong mid-way.
    spec.run_single(Value::map([("n", Value::Int(5))]));
    assert_eq!(spec.kv.peek("loop_result"), Some(&Value::Int(15)));
}

#[test]
fn deep_chain_hits_depth_limit_but_stays_correct() {
    let mut reg = FunctionRegistry::new();
    let mut names = Vec::new();
    for i in 0..30 {
        let name = format!("s{i}");
        reg.register(FunctionSpec::new(
            &name,
            Program::builder()
                .compute_ms(1)
                .ret(make_map([("v", add(field(input(), "v"), lit(1i64)))])),
        ));
        names.push(name);
    }
    let app = Arc::new(AppSpec::new(
        "Deep",
        "Test",
        reg,
        Workflow::sequence(names.iter().map(Workflow::task).collect()),
    ));
    let mut cfg = SpecConfig::full();
    cfg.max_depth = 6; // far below the chain length
    let mut spec = SpecEngine::new(Arc::clone(&app), cfg, 3);
    spec.prewarm();
    spec.run_single(Value::map([("v", Value::Int(0))]));
    spec.run_single(Value::map([("v", Value::Int(0))]));
    let m = spec.run_closed(0, |_| Value::Null);
    assert_eq!(m.records.len(), 2);
    assert_eq!(m.records[1].sequence.len(), 30);
}

#[test]
fn interleaved_requests_do_not_cross_speculate() {
    // Two requests in flight concurrently: each must see only its own
    // buffered writes (per-invocation Data Buffer).
    let mut reg = FunctionRegistry::new();
    reg.register(FunctionSpec::new(
        "writer",
        Program::builder()
            .compute_ms(10)
            .set(lit("shared"), field(input(), "tag"))
            .ret(make_map([("tag", field(input(), "tag"))])),
    ));
    reg.register(FunctionSpec::new(
        "reader",
        Program::builder()
            .get(lit("shared"), "s")
            .compute_ms(5)
            .set(concat([lit("seen:"), field(input(), "tag")]), var("s"))
            .ret(var("s")),
    ));
    let app = Arc::new(AppSpec::new(
        "Isolation",
        "Test",
        reg,
        Workflow::sequence(vec![Workflow::task("writer"), Workflow::task("reader")]),
    ));
    let mut spec = SpecEngine::new(Arc::clone(&app), SpecConfig::full(), 4);
    spec.prewarm();
    // Train both tags.
    spec.run_single(Value::map([("tag", Value::Int(1))]));
    spec.run_single(Value::map([("tag", Value::Int(2))]));
    // Overlap them under open load: each request's reader must see its
    // own writer's value (forwarded through its own Data Buffer).
    let counter = std::sync::atomic::AtomicI64::new(0);
    let m = spec.run_open(
        300.0,
        SimDuration::from_secs(1),
        SimDuration::ZERO,
        move |_r: &mut SimRng| {
            let i = counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Value::map([("tag", Value::Int(1 + (i % 2)))])
        },
    );
    assert!(m.completed > 100);
    // In-order per request: seen:<tag> must equal <tag>.
    assert_eq!(spec.kv.peek("seen:1"), Some(&Value::Int(1)));
    assert_eq!(spec.kv.peek("seen:2"), Some(&Value::Int(2)));
}

#[test]
fn determinism_per_squash_mechanism() {
    for squash in [
        SquashMechanism::Lazy,
        SquashMechanism::ProcessKill,
        SquashMechanism::ContainerKill,
    ] {
        let run = |seed: u64| {
            let app = loop_app();
            let mut cfg = SpecConfig::full();
            cfg.squash = squash;
            let mut e = SpecEngine::new(app, cfg, seed);
            e.prewarm();
            let mut total = 0u64;
            for n in [3i64, 5, 3, 2, 5] {
                total += e.run_single(Value::map([("n", Value::Int(n))])).as_micros();
            }
            total
        };
        assert_eq!(run(9), run(9), "{squash:?} must be deterministic");
    }
}

#[test]
fn container_kill_makes_squashes_expensive() {
    // After a mispredicted branch, ContainerKill destroys the victim's
    // container, so the next use of that function pays a cold start.
    let mut reg = FunctionRegistry::new();
    reg.register(FunctionSpec::new(
        "cond",
        Program::builder()
            .compute_ms(4)
            .ret(make_map([("t", field(input(), "flag"))])),
    ));
    reg.register(FunctionSpec::new(
        "hot",
        Program::builder().compute_ms(4).ret(lit(1i64)),
    ));
    reg.register(FunctionSpec::new(
        "cold",
        Program::builder().compute_ms(4).ret(lit(0i64)),
    ));
    let app = Arc::new(AppSpec::new(
        "Kill",
        "Test",
        reg,
        Workflow::when_field(
            "cond",
            "t",
            Workflow::task("hot"),
            Some(Workflow::task("cold")),
        ),
    ));
    let run_with = |squash: SquashMechanism| {
        let mut cfg = SpecConfig::full();
        cfg.squash = squash;
        let mut e = SpecEngine::new(Arc::clone(&app), cfg, 5);
        // Only ONE warm container per function: destruction hurts.
        let funcs: Vec<_> = app.registry.iter().map(|(id, _)| id).collect();
        e.cluster.prewarm_all(funcs, 1);
        for _ in 0..3 {
            e.run_single(Value::map([("flag", Value::Bool(true))]));
        }
        // Mispredict (squash 'hot'), then take the hot path again: with
        // ContainerKill the 'hot' container was destroyed.
        e.run_single(Value::map([("flag", Value::Bool(false))]));
        e.run_single(Value::map([("flag", Value::Bool(true))]))
    };
    let kill = run_with(SquashMechanism::ProcessKill);
    let container = run_with(SquashMechanism::ContainerKill);
    assert!(
        container > kill + SimDuration::from_millis(1000),
        "container-kill must force a cold start: {container} vs {kill}"
    );
}

#[test]
fn error_in_function_body_fails_gracefully() {
    let mut reg = FunctionRegistry::new();
    reg.register(FunctionSpec::new(
        "bad",
        Program::builder()
            .compute_ms(2)
            .let_("x", div(lit(1i64), field(input(), "zero")))
            .ret(var("x")),
    ));
    reg.register(FunctionSpec::new(
        "after",
        Program::builder().compute_ms(2).ret(input()),
    ));
    let app = Arc::new(AppSpec::new(
        "Faulty",
        "Test",
        reg,
        Workflow::sequence(vec![Workflow::task("bad"), Workflow::task("after")]),
    ));
    let mut e = SpecEngine::new(app, SpecConfig::full(), 6);
    e.prewarm();
    // Division by zero inside `bad`: the invocation must still complete
    // (error document propagates) rather than hang.
    let d = e.run_single(Value::map([("zero", Value::Int(0))]));
    assert!(d > SimDuration::ZERO);
    let m = e.run_closed(0, |_| Value::Null);
    assert_eq!(m.completed, 1);
}

#[test]
fn stmt_level_loop_limit_is_contained() {
    let mut reg = FunctionRegistry::new();
    reg.register(FunctionSpec::new(
        "spinner",
        Program::builder()
            .while_(
                lit(true),
                vec![Stmt::Compute(specfaas_workflow::DurationSpec::millis(1))],
                5,
            )
            .ret(lit("unreachable")),
    ));
    let app = Arc::new(AppSpec::new("Spin", "Test", reg, Workflow::task("spinner")));
    let mut e = SpecEngine::new(app, SpecConfig::full(), 7);
    e.prewarm();
    let d = e.run_single(Value::Null);
    // Runs 5 iterations then errors out; must terminate promptly.
    assert!(d < SimDuration::from_millis(100));
}
