#![warn(missing_docs)]

//! # SpecFaaS — speculative function execution for serverless applications
//!
//! A full reproduction of **SpecFaaS (HPCA 2023)**: accelerating
//! multi-function serverless applications by executing functions *early,
//! speculatively*, before their control and data dependences resolve —
//! out-of-order execution, lifted from processor pipelines to FaaS
//! workflows.
//!
//! The repository builds every layer from scratch:
//!
//! * [`sim`] — deterministic discrete-event simulation kernel,
//! * [`storage`] — global key-value store, local caches, blob traces,
//! * [`workflow`] — function programs (a small interpreted language),
//!   explicit workflow DSL, annotations, side-effect analysis,
//! * [`platform`] — an OpenWhisk-shaped platform substrate and the
//!   conventional baseline engine,
//! * [`core`] — the SpecFaaS contribution: sequence table, path-history
//!   branch predictor, memoization tables, Data Buffer, execution
//!   pipeline, squash mechanisms, speculation policies,
//! * [`apps`] — the paper's three application suites (16 apps) and the
//!   synthetic trace/dataset generators.
//!
//! ## Quickstart
//!
//! ```
//! use specfaas::prelude::*;
//! use std::sync::Arc;
//!
//! // A two-function application.
//! let mut reg = FunctionRegistry::new();
//! reg.register(FunctionSpec::new(
//!     "double",
//!     Program::builder()
//!         .compute_ms(5)
//!         .ret(make_map([("v", mul(field(input(), "v"), lit(2i64)))])),
//! ));
//! reg.register(FunctionSpec::new(
//!     "inc",
//!     Program::builder()
//!         .compute_ms(5)
//!         .ret(make_map([("v", add(field(input(), "v"), lit(1i64)))])),
//! ));
//! let wf = Workflow::sequence(vec![Workflow::task("double"), Workflow::task("inc")]);
//! let app = Arc::new(AppSpec::new("Demo", "Docs", reg, wf));
//!
//! // Baseline vs SpecFaaS (trained on one prior request).
//! let mut base = BaselineEngine::new(Arc::clone(&app), 1);
//! base.prewarm();
//! let b = base.run_single(Value::map([("v", Value::Int(20))]));
//!
//! let mut spec = SpecEngine::new(Arc::clone(&app), SpecConfig::full(), 1);
//! spec.prewarm();
//! spec.run_single(Value::map([("v", Value::Int(20))]));
//! let s = spec.run_single(Value::map([("v", Value::Int(20))]));
//! assert!(s < b, "speculation overlaps the two functions");
//! ```

pub use specfaas_apps as apps;
pub use specfaas_core as core;
pub use specfaas_platform as platform;
pub use specfaas_sim as sim;
pub use specfaas_storage as storage;
pub use specfaas_workflow as workflow;

/// The items needed for typical use: building applications, running the
/// baseline and SpecFaaS engines, and inspecting results.
pub mod prelude {
    pub use specfaas_core::{SpecConfig, SpecEngine, SquashMechanism};
    pub use specfaas_platform::{BaselineEngine, Load, RunMetrics};
    pub use specfaas_sim::{FaultPlan, FaultSite, RetryPolicy, SimDuration, SimRng, SimTime};
    pub use specfaas_storage::{KvStore, Value};
    pub use specfaas_workflow::expr::*;
    pub use specfaas_workflow::{
        Annotations, AppSpec, FunctionRegistry, FunctionSpec, Program, Workflow,
    };
}
