//! Demonstrates the Data Buffer's dependence machinery directly: an
//! application where a producer function writes a record that a
//! downstream consumer reads. Under speculation the consumer launches
//! early, reads stale state, and is squashed and re-executed when the
//! producer's buffered write surfaces the out-of-order RAW dependence —
//! after enough squashes, the stall list converts squashes into stalls.
//!
//! ```text
//! cargo run --release --example dependence_detection
//! ```

use std::sync::Arc;

use specfaas::prelude::*;

fn main() {
    let mut reg = FunctionRegistry::new();
    reg.register(FunctionSpec::new(
        "Reserve",
        Program::builder()
            .compute_ms(8)
            .get(lit("inventory"), "left")
            .set(lit("inventory"), sub(var("left"), lit(1i64)))
            .set(lit("reservation"), field(input(), "order"))
            .ret(make_map([("order", field(input(), "order"))])),
    ));
    reg.register(FunctionSpec::new(
        "Invoice",
        Program::builder()
            // Reads the record the predecessor writes: a cross-function
            // RAW dependence through global storage.
            .get(lit("reservation"), "resv")
            .compute_ms(5)
            .ret(make_map([("invoiced", var("resv"))])),
    ));
    let app = Arc::new(AppSpec::new(
        "Inventory",
        "Demo",
        reg,
        Workflow::sequence(vec![Workflow::task("Reserve"), Workflow::task("Invoice")]),
    ));

    let mut cfg = SpecConfig::full();
    cfg.stall_after_squashes = 2;
    let mut spec = SpecEngine::new(Arc::clone(&app), cfg, 11);
    spec.prewarm();
    spec.kv.set("inventory", Value::Int(100));

    let request = Value::map([("order", Value::Int(9001))]);
    for i in 0..6 {
        let d = spec.run_single(request.clone());
        let m = spec.run_closed(0, |_| Value::Null);
        let last = m.records.last();
        println!(
            "run {i}: {d}, squashed {} function(s), stalls so far {}",
            last.map(|r| r.functions_squashed).unwrap_or(0),
            spec.stall_list().stalls_avoided(),
        );
    }
    println!(
        "\nfinal inventory: {} (100 - 6 reservations, despite speculation)",
        spec.kv.peek("inventory").unwrap()
    );
    assert_eq!(spec.kv.peek("inventory"), Some(&Value::Int(94)));
    assert!(
        spec.stall_list().stalls_avoided() > 0,
        "stall list should have engaged"
    );
    println!("stall list engaged: squashes converted into stalls.");
}
