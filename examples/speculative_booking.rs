//! A realistic booking workload under load: the FlightBooking app from
//! the FaaSChain suite driven by a Poisson arrival process, comparing
//! baseline and SpecFaaS latency distributions.
//!
//! ```text
//! cargo run --release --example speculative_booking
//! ```

use std::sync::Arc;

use specfaas::prelude::*;
use specfaas_apps::faaschain;
use specfaas_sim::SimDuration;

fn main() {
    let bundle = faaschain::flight_booking();
    println!(
        "application: {} ({} functions, {} branches)",
        bundle.name(),
        bundle.app.registry.len(),
        bundle.app.workflow.branch_count()
    );

    let duration = SimDuration::from_secs(4);
    let warmup = SimDuration::from_millis(400);

    // Baseline under a 100-requests/second Poisson load.
    let mut base = BaselineEngine::new(Arc::clone(&bundle.app), 7);
    base.prewarm();
    let mut rng = SimRng::seed(7);
    (bundle.seed)(&mut base.kv, &mut rng);
    let gen = bundle.make_input.clone();
    let mut mb = base.run_open(100.0, duration, warmup, move |r| gen(r));

    // SpecFaaS, trained on 300 prior invocations, same load.
    let mut spec = SpecEngine::new(Arc::clone(&bundle.app), SpecConfig::full(), 7);
    spec.prewarm();
    let mut rng = SimRng::seed(7);
    (bundle.seed)(&mut spec.kv, &mut rng);
    let gen = bundle.make_input.clone();
    spec.run_closed(300, move |r| gen(r));
    let gen = bundle.make_input.clone();
    let mut ms = spec.run_open(100.0, duration, warmup, move |r| gen(r));

    println!("\n                 baseline    SpecFaaS");
    println!(
        "mean response:   {:>7.1}ms  {:>7.1}ms",
        mb.mean_response_ms(),
        ms.mean_response_ms()
    );
    println!(
        "P50 response:    {:>7.1}ms  {:>7.1}ms",
        mb.latency.p50_ms(),
        ms.latency.p50_ms()
    );
    println!(
        "P99 response:    {:>7.1}ms  {:>7.1}ms",
        mb.latency.p99_ms(),
        ms.latency.p99_ms()
    );
    println!("requests served: {:>9}  {:>9}", mb.completed, ms.completed);
    println!("\nspeculation statistics:");
    println!(
        "  branch predictor hit rate: {:.1}%",
        ms.branch_hits.rate() * 100.0
    );
    println!(
        "  memoization hit rate:      {:.1}%",
        ms.memo_hits.rate() * 100.0
    );
    println!("  functions squashed:        {}", ms.functions_squashed);
    println!(
        "  speedup (mean):            {:.2}x",
        mb.mean_response_ms() / ms.mean_response_ms()
    );
}
