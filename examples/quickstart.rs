//! Quickstart: build a small serverless application, run it on the
//! conventional (OpenWhisk-style) baseline and on SpecFaaS, and compare
//! end-to-end response times.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use specfaas::prelude::*;

fn main() {
    // 1. Define an application: three functions composed in sequence
    //    behind an authentication branch (OpenWhisk-Composer style).
    let mut reg = FunctionRegistry::new();
    reg.register(FunctionSpec::new(
        "Auth",
        Program::builder()
            .compute_ms(5)
            .ret(make_map([("ok", field(input(), "valid"))])),
    ));
    reg.register(FunctionSpec::new(
        "Work",
        Program::builder()
            .compute_ms(9)
            .get(lit("config"), "cfg")
            .ret(make_map([("result", add(field(input(), "x"), var("cfg")))])),
    ));
    reg.register(FunctionSpec::new(
        "Store",
        Program::builder()
            .compute_ms(6)
            .set(lit("last_result"), field(input(), "result"))
            .ret(make_map([("stored", lit(true))])),
    ));
    reg.register(FunctionSpec::new(
        "Reject",
        Program::builder().compute_ms(2).ret(lit("denied")),
    ));
    let workflow = Workflow::when_field(
        "Auth",
        "ok",
        Workflow::sequence(vec![Workflow::task("Work"), Workflow::task("Store")]),
        Some(Workflow::task("Reject")),
    );
    let app = Arc::new(AppSpec::new("Quickstart", "Demo", reg, workflow));

    let request = Value::map([("valid", Value::Bool(true)), ("x", Value::Int(40))]);

    // 2. Conventional execution: each function waits for its
    //    predecessor, paying platform + conductor overheads in between.
    let mut baseline = BaselineEngine::new(Arc::clone(&app), 42);
    baseline.prewarm();
    baseline.kv.set("config", Value::Int(2));
    let base_time = baseline.run_single(request.clone());
    println!("baseline response:  {base_time}");
    assert_eq!(baseline.kv.peek("last_result"), Some(&Value::Int(42)));

    // 3. SpecFaaS: the same requests with speculative execution. The
    //    first request trains the branch predictor and memoization
    //    tables; later identical requests overlap all three functions.
    let mut spec = SpecEngine::new(Arc::clone(&app), SpecConfig::full(), 42);
    spec.prewarm();
    spec.kv.set("config", Value::Int(2));
    spec.run_single(request.clone()); // training invocation
    let spec_time = spec.run_single(request);
    println!("SpecFaaS response:  {spec_time}");
    assert_eq!(spec.kv.peek("last_result"), Some(&Value::Int(42)));

    println!(
        "speedup:            {:.2}x",
        base_time.as_millis_f64() / spec_time.as_millis_f64()
    );
    println!(
        "branch predictor hit rate: {:.0}%",
        spec.predictor().hit_rate().rate() * 100.0
    );
}
